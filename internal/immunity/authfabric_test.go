package immunity

import (
	"crypto/tls"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/dimmunix/dimmunix/internal/immunity/auth"
	"github.com/dimmunix/dimmunix/internal/immunity/wire"
)

// authFleetKey signs every token in these tests.
var authFleetKey = []byte("test-fleet-signing-key")

// authTLSHub boots a TLS hub requiring token auth: the listener serves
// a CA-issued certificate (client certs verified against the same CA
// when presented) and every hello must carry a token under
// authFleetKey. Returns the hub, the server, the CA, and the dial
// options a trusting client uses.
func authTLSHub(t *testing.T, threshold int, opts ...ExchangeOption) (*Exchange, *ExchangeServer, *auth.CA, []TCPOption) {
	t.Helper()
	ca, err := auth.NewCA("test-fleet-ca")
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := ca.IssueTLS("hub0", nil)
	if err != nil {
		t.Fatal(err)
	}
	hub := newTestHub(t, threshold,
		append([]ExchangeOption{WithAuthVerifier(auth.NewStatic(authFleetKey))}, opts...)...)
	srv, err := ServeTCP(hub, "127.0.0.1:0", WithServeTLS(auth.ServerConfig(leaf, ca.Pool())))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return hub, srv, ca, []TCPOption{WithDialTLS(auth.ClientConfig(ca.Pool(), ""))}
}

// mintFor signs a token for the given claims under the fleet key.
func mintFor(t *testing.T, c auth.Claims) string {
	t.Helper()
	token, err := auth.Mint(authFleetKey, c)
	if err != nil {
		t.Fatal(err)
	}
	return token
}

// authPhone connects one device through the TLS+token path.
func authPhone(t *testing.T, name, token string, addr string, dial []TCPOption) *phoneSim {
	t.Helper()
	svc, err := NewService(name, nil)
	if err != nil {
		t.Fatal(err)
	}
	proc, _ := attach(t, svc, "app")
	client, err := Connect(NewTCPTransport(addr, dial...), name, svc, WithClientToken(token))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close(); svc.Close() })
	return &phoneSim{svc: svc, proc: proc, client: client}
}

// TestTLSAuthFleetEndToEnd: the confirm-before-arm scenario with the
// full fabric on — TLS on the sockets, a device-bound token on one
// phone and a tenant-wide wildcard token on the other. Arming still
// gates at the threshold and propagates to both.
func TestTLSAuthFleetEndToEnd(t *testing.T) {
	hub, srv, _, dial := authTLSHub(t, 2)
	p0 := authPhone(t, "phone0", mintFor(t, auth.Claims{Device: "phone0"}), srv.Addr(), dial)
	p1 := authPhone(t, "phone1", mintFor(t, auth.Claims{Device: auth.WildcardDevice}), srv.Addr(), dial)
	key := testSig(0).Key()

	if _, _, err := p0.svc.Publish("local", testSig(0)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "hub sees first report", func() bool { return len(hub.Provenance()) == 1 })
	time.Sleep(20 * time.Millisecond)
	if p1.armedOn(key) {
		t.Fatal("armed below the confirmation threshold")
	}
	if _, _, err := p1.svc.Publish("local", testSig(0)); err != nil {
		t.Fatal(err)
	}
	for i, p := range []*phoneSim{p0, p1} {
		ph := p
		waitFor(t, fmt.Sprintf("phone%d armed over TLS", i), func() bool { return ph.armedOn(key) })
	}
	if n := hub.met.authFailures.With("missing-token").Value(); n != 0 {
		t.Fatalf("clean run counted %d auth failures", n)
	}
}

// TestAuthRefusalMatrix: every way a hello can fail authentication is
// refused with a clean error — never a registered session — and counted
// under its own reason label.
func TestAuthRefusalMatrix(t *testing.T) {
	hub, srv, _, dial := authTLSHub(t, 1)
	otherKey := []byte("not-the-fleet-key")
	badMac, err := auth.Mint(otherKey, auth.Claims{Device: "phone0"})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		token  string
		reason string
		errHas string
	}{
		{"missing-token", "", "missing-token", "no token"},
		{"malformed", "not-a-token", "malformed", "malformed"},
		{"bad-signature", badMac, "bad-signature", "signature"},
		{"expired", mintFor(t, auth.Claims{Device: "phone0", Exp: time.Now().Add(-time.Hour).Unix()}), "expired", "expired"},
		{"device-mismatch", mintFor(t, auth.Claims{Device: "someone-else"}), "device-mismatch", "not issued for device"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			svc, err := NewService("phone0", nil)
			if err != nil {
				t.Fatal(err)
			}
			defer svc.Close()
			before := hub.met.authFailures.With(tc.reason).Value()
			var opts []ClientOption
			if tc.token != "" {
				opts = append(opts, WithClientToken(tc.token))
			}
			client, err := Connect(NewTCPTransport(srv.Addr(), dial...), "phone0", svc, opts...)
			if err == nil {
				client.Close()
				t.Fatalf("%s hello was accepted", tc.name)
			}
			if !strings.Contains(err.Error(), tc.errHas) {
				t.Fatalf("%s error %q does not mention %q", tc.name, err, tc.errHas)
			}
			if got := hub.met.authFailures.With(tc.reason).Value(); got != before+1 {
				t.Fatalf("%s counted %d → %d, want one %q refusal", tc.name, before, got, tc.reason)
			}
		})
	}
	// No refused hello leaked a registered device session.
	if st := hub.Status(); len(st.Devices) != 0 {
		t.Fatalf("refused hellos registered devices: %v", st.Devices)
	}
}

// TestTokenIgnoredByAuthDisabledHub: a v5 client carrying a token
// interoperates with an auth-disabled hub — the token rides the hello
// and is simply ignored, so fleets can roll tokens out to devices
// before the hubs start enforcing them.
func TestTokenIgnoredByAuthDisabledHub(t *testing.T) {
	hub := newTestHub(t, 1)
	srv, err := ServeTCP(hub, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	svc, err := NewService("phone0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	proc, _ := attach(t, svc, "app")
	client, err := Connect(NewTCPTransport(srv.Addr()), "phone0", svc,
		WithClientToken("junk-the-hub-never-reads"))
	if err != nil {
		t.Fatalf("token-carrying client refused by auth-disabled hub: %v", err)
	}
	defer client.Close()
	if _, _, err := svc.Publish("local", testSig(0)); err != nil {
		t.Fatal(err)
	}
	p := &phoneSim{svc: svc, proc: proc, client: client}
	waitFor(t, "armed through auth-disabled hub", func() bool { return p.armedOn(testSig(0).Key()) })
}

// TestPeerHelloIdentityEnforced: with peer auth on, a peer-hello is
// only accepted when the claimed hub id is backed by a fleet-CA
// client certificate naming it. A rogue hub with a certificate from a
// different CA completes the handshake certless (its cert cannot chain
// to the hub's client CA pool) and is refused at the hello; so is a
// fleet member claiming an id its certificate does not carry.
func TestPeerHelloIdentityEnforced(t *testing.T) {
	ca, err := auth.NewCA("test-fleet-ca")
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := ca.IssueTLS("hub0", nil)
	if err != nil {
		t.Fatal(err)
	}
	hub := newTestHub(t, 1, WithPeerAuth())
	srv, err := ServeTCP(hub, "127.0.0.1:0", WithServeTLS(auth.ServerConfig(leaf, ca.Pool())))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rogueCA, err := auth.NewCA("rogue-ca")
	if err != nil {
		t.Fatal(err)
	}
	rogueLeaf, err := rogueCA.IssueTLS("hub1", nil)
	if err != nil {
		t.Fatal(err)
	}
	fleetLeaf, err := ca.IssueTLS("hub1", nil)
	if err != nil {
		t.Fatal(err)
	}

	peerHello := func(cert tls.Certificate, claim string) *wire.Ack {
		t.Helper()
		nc, err := tls.Dial("tcp", srv.Addr(), auth.PeerConfig(cert, ca.Pool(), ""))
		if err != nil {
			t.Fatalf("handshake as %s: %v", claim, err)
		}
		defer nc.Close()
		nc.SetDeadline(time.Now().Add(5 * time.Second))
		m := wire.Message{V: wire.Version, Type: wire.TypePeerHello,
			PeerHello: &wire.PeerHello{Hub: claim}}
		if err := wire.WriteFrame(nc, m); err != nil {
			t.Fatal(err)
		}
		resp, err := wire.ReadFrame(nc)
		if err != nil {
			t.Fatalf("want an ack for %s, got read error %v", claim, err)
		}
		if resp.Type != wire.TypeAck {
			t.Fatalf("want an ack for %s, got %+v", claim, resp)
		}
		return resp.Ack
	}

	before := hub.met.authFailures.With("peer-identity").Value()
	if ack := peerHello(rogueLeaf, "hub1"); ack.OK || !strings.Contains(ack.Error, "transport identity") {
		t.Fatalf("rogue-CA peer-hello not refused on identity: %+v", ack)
	}
	if ack := peerHello(fleetLeaf, "impostor"); ack.OK || !strings.Contains(ack.Error, "transport identity") {
		t.Fatalf("misclaimed peer-hello not refused on identity: %+v", ack)
	}
	if got := hub.met.authFailures.With("peer-identity").Value(); got != before+2 {
		t.Fatalf("peer-identity refusals counted %d → %d, want two", before, got)
	}
	// A fleet certificate whose CN matches the claim clears the identity
	// gate (this unclustered hub then refuses on clustering, not auth).
	if ack := peerHello(fleetLeaf, "hub1"); ack.OK || !strings.Contains(ack.Error, "not clustered") {
		t.Fatalf("matching peer identity refused on the wrong gate: %+v", ack)
	}
}
