package immunity

import (
	"errors"
	"sync"
	"testing"

	"github.com/dimmunix/dimmunix/internal/immunity/wire"
)

// legacyHub simulates a pre-negotiation (v1) hub: it ignores the
// hello's version range and per-gen epoch map, filters catch-up by the
// flat epoch alone, and acks without a negotiated version — the
// mid-rollout peer a freshly upgraded client must still sync with.
type legacyHub struct {
	gen  string
	sigs []wire.Signature // armed, armEpoch == index+1

	mu     sync.Mutex
	hellos []wire.Hello // observed handshakes
}

type legacySession struct {
	hub  *legacyHub
	recv func(wire.Message)
}

func (h *legacyHub) Dial(recv func(wire.Message), down func(err error)) (Session, error) {
	return &legacySession{hub: h, recv: recv}, nil
}

func (s *legacySession) Send(m wire.Message) error {
	if m.Type != wire.TypeHello {
		return nil // reports are irrelevant to this hub
	}
	h := s.hub
	h.mu.Lock()
	h.hellos = append(h.hellos, *m.Hello)
	h.mu.Unlock()
	flat := m.Hello.Epoch // a v1 hub reads nothing else
	go func() {
		s.recv(wire.Message{V: 1, Type: wire.TypeAck,
			Ack: &wire.Ack{OK: true, Epoch: uint64(len(h.sigs)), Gen: h.gen}})
		var missed []wire.Signature
		for i, ws := range h.sigs {
			if uint64(i+1) > flat {
				missed = append(missed, ws)
			}
		}
		if len(missed) > 0 {
			s.recv(wire.Message{V: 1, Type: wire.TypeDelta,
				Delta: &wire.Delta{Epoch: uint64(len(h.sigs)), Sigs: missed}})
		}
	}()
	return nil
}

func (s *legacySession) Close() error { return nil }

// switchTransport swaps its backend mid-test, modeling a device whose
// redial lands on a different hub.
type switchTransport struct {
	mu    sync.Mutex
	inner Transport
}

func (s *switchTransport) Dial(recv func(wire.Message), down func(err error)) (Session, error) {
	s.mu.Lock()
	inner := s.inner
	s.mu.Unlock()
	if inner == nil {
		return nil, errors.New("no backend")
	}
	return inner.Dial(recv, down)
}

// TestClientRedialIntoLegacyHub: a client carrying a fleet epoch from
// one hub incarnation redials into a pre-negotiation hub that filters
// catch-up by the flat epoch alone. The client must detect the foreign
// filter (no negotiated version in the ack, flat epoch ahead of its
// resume point for that gen) and redial so the legacy hub replays its
// full armed set — losing none of the armings the first, wrongly
// filtered session skipped.
func TestClientRedialIntoLegacyHub(t *testing.T) {
	hub1 := newTestHub(t, 1)
	sw := &switchTransport{inner: NewLoopback(hub1)}

	svc, err := NewService("roamer", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	client, err := Connect(sw, "roamer", svc)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Arm two signatures on hub1 so the client's resume point for gen1
	// is 2 — a flat epoch that would wrongly filter a different hub's
	// catch-up.
	confirmer, err := NewService("confirmer", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer confirmer.Close()
	cClient, err := Connect(NewLoopback(hub1), "confirmer", confirmer)
	if err != nil {
		t.Fatal(err)
	}
	defer cClient.Close()
	for i := 0; i < 2; i++ {
		if _, _, err := confirmer.Publish("local", testSig(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "client applied hub1's armings", func() bool { return client.FleetEpoch() == 2 })

	// The redial lands on a legacy hub holding three armed signatures
	// the client has never seen.
	legacy := &legacyHub{gen: "legacy-gen",
		sigs: []wire.Signature{wire.FromCore(testSig(10)), wire.FromCore(testSig(11)), wire.FromCore(testSig(12))}}
	sw.mu.Lock()
	sw.inner = legacy
	sw.mu.Unlock()
	hub1.Close() // drops the live session; the client redials into legacy

	for i := 10; i <= 12; i++ {
		key := testSig(i).Key()
		waitFor(t, "legacy hub's armings all install", func() bool {
			sigs, _, err := svc.Snapshot()
			if err != nil {
				return false
			}
			for _, sig := range sigs {
				if sig.Key() == key {
					return true
				}
			}
			return false
		})
	}
	// The client detected the foreign flat-epoch filter and re-helloed
	// with the legacy hub's own resume point (0).
	legacy.mu.Lock()
	defer legacy.mu.Unlock()
	if len(legacy.hellos) < 2 {
		t.Fatalf("client accepted the wrongly filtered first session (hellos: %+v)", legacy.hellos)
	}
	last := legacy.hellos[len(legacy.hellos)-1]
	if last.Epoch != 0 {
		t.Fatalf("redial hello carried flat epoch %d, want 0 (the legacy hub's own resume point)", last.Epoch)
	}
}
