package immunity

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"

	"github.com/dimmunix/dimmunix/internal/immunity/metrics"
	"github.com/dimmunix/dimmunix/internal/immunity/wire"
)

// Durable fleet provenance. The hub's per-signature state — who saw it
// first, which devices independently confirmed it, which devices it was
// pushed to, whether it is armed — must survive hub restarts: a rebooted
// hub that forgot its confirmations would either re-arm below threshold
// (if it trusted re-reports it had itself pushed) or lose confirmations
// (forcing devices to re-observe a deadlock the fleet already paid for).
// The store is an upsert log keyed by signature key; Load replays it
// last-wins, so an append-only file implementation recovers its intact
// prefix after a crash.

// ProvenanceRecord is one signature's persisted fleet state.
type ProvenanceRecord struct {
	// Seq is the record's first-report order (1-based); it reconstructs
	// the hub's deterministic provenance ordering after a restart.
	Seq int `json:"seq"`
	// Key is the signature's canonical identity (core.Signature.Key).
	Key string `json:"key"`
	// Sig is the canonical wire encoding of the signature itself.
	Sig wire.Signature `json:"sig"`
	// FirstSeen is the device that first reported it.
	FirstSeen string `json:"first_seen"`
	// ConfirmedBy lists the devices that independently reported it.
	ConfirmedBy []string `json:"confirmed_by"`
	// PushedTo lists the devices the hub delivered the signature to; a
	// report from such a device is an echo, not a confirmation.
	PushedTo []string `json:"pushed_to"`
	// Armed reports fleet-wide arming.
	Armed bool `json:"armed"`
	// ArmEpoch is the fleet delta epoch assigned when the signature
	// armed (0 while unarmed). The hub's epoch counter resumes from the
	// maximum ArmEpoch in the store.
	ArmEpoch uint64 `json:"arm_epoch,omitempty"`
	// Owner is the cluster id of the hub owning this signature's confirm
	// bookkeeping ("" outside a federation). A record whose Owner is not
	// the reloading hub is a replicated armed entry: slim by
	// construction (no ConfirmedBy/FirstSeen), it carries only what a
	// non-owner needs — the signature, the arming, and the local
	// delivery state — so per-hub persistent state stays proportional to
	// the owned slice of the fleet plus the armed set.
	Owner string `json:"owner,omitempty"`
	// OwnerSeq is the owner's monotonic arming sequence: the replay
	// cursor for hub-to-hub resubscription.
	OwnerSeq uint64 `json:"owner_seq,omitempty"`
	// RemoteConfirms is the confirmation count replicated at arming for
	// a non-owned entry.
	RemoteConfirms int `json:"remote_confirms,omitempty"`
	// Tenant scopes the record to one tenant's fleet ("" for the
	// default tenant). Key already carries the tenant prefix; the field
	// is stored explicitly so reloads and replicas recover the scope
	// without parsing keys.
	Tenant string `json:"tenant,omitempty"`
}

// ProvenanceStore persists hub provenance across restarts. Append
// upserts one record (last write per key wins on Load); Load returns the
// latest record per key. Implementations must be safe for concurrent
// use.
type ProvenanceStore interface {
	Load() ([]ProvenanceRecord, error)
	Append(rec ProvenanceRecord) error
}

// DefaultCompactThreshold is how many dead (superseded) upsert lines a
// FileProvenance log tolerates before rewriting itself to a snapshot.
const DefaultCompactThreshold = 1024

// FileProvenance is a ProvenanceStore backed by a JSON-lines upsert log:
// one record per line, replayed last-wins. A line torn by a crash is
// skipped on load (the previous record for that key still stands), so
// the hub always reboots with a consistent — at worst slightly stale —
// view, never a corrupt one.
//
// The log is append-only, so every upsert of an existing key leaves a
// dead line behind; once the dead count passes the compaction threshold
// the store rewrites itself as a snapshot — latest record per key, Seq
// order — into a temp file that is fsynced and renamed over the log.
// The rename is atomic: a crash at any point leaves either the old log
// (intact, possibly with its dead weight) or the new snapshot, never a
// torn mix, and a stale temp file is simply overwritten next time.
type FileProvenance struct {
	mu        sync.Mutex
	path      string
	threshold int
	// lines/keys mirror the log's line count and live key set so the
	// dead count is known without rescanning per append; -1 lines means
	// not yet measured (first touch scans once).
	lines int
	keys  map[string]struct{}
	// compactions counts snapshot rewrites; compactErrors counts failed
	// attempts (the log stays valid, just uncompacted). metCompactions/
	// metCompactErrors mirror them onto registry counters when the store
	// was built with WithCompactionCounters (nil instruments are no-ops).
	compactions      uint64
	compactErrors    uint64
	metCompactions   *metrics.Counter
	metCompactErrors *metrics.Counter
}

var _ ProvenanceStore = (*FileProvenance)(nil)

// FileProvenanceOption configures a FileProvenance.
type FileProvenanceOption func(*FileProvenance)

// WithCompactThreshold overrides how many dead log lines trigger a
// snapshot rewrite; n <= 0 disables compaction.
func WithCompactThreshold(n int) FileProvenanceOption {
	return func(f *FileProvenance) { f.threshold = n }
}

// WithCompactionCounters mirrors the store's compaction and
// compaction-error counts onto registry counters, so a daemon surfaces
// them on /metrics next to the hub's persist errors. Either counter
// may be nil.
func WithCompactionCounters(compactions, compactErrors *metrics.Counter) FileProvenanceOption {
	return func(f *FileProvenance) {
		f.metCompactions = compactions
		f.metCompactErrors = compactErrors
	}
}

// NewFileProvenance creates a store at path; the file is created on
// first append and a missing file loads as empty.
func NewFileProvenance(path string, opts ...FileProvenanceOption) *FileProvenance {
	f := &FileProvenance{path: path, threshold: DefaultCompactThreshold, lines: -1}
	for _, opt := range opts {
		opt(f)
	}
	return f
}

// Path returns the backing file path.
func (f *FileProvenance) Path() string { return f.path }

// Compactions returns how many snapshot rewrites the store has done.
func (f *FileProvenance) Compactions() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.compactions
}

// CompactErrors returns how many snapshot rewrites failed (appends
// themselves were unaffected).
func (f *FileProvenance) CompactErrors() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.compactErrors
}

// scanLocked replays the log: the newest record per key, plus the raw
// line count (for the dead-record accounting). Caller holds f.mu.
func (f *FileProvenance) scanLocked() (map[string]ProvenanceRecord, int, error) {
	latest := make(map[string]ProvenanceRecord)
	file, err := os.Open(f.path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return latest, 0, nil
		}
		return nil, 0, fmt.Errorf("load provenance: %w", err)
	}
	defer file.Close()
	lines := 0
	sc := bufio.NewScanner(file)
	sc.Buffer(make([]byte, 0, 64*1024), wire.MaxFrame)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		lines++
		var rec ProvenanceRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			// Torn tail or corrupt line: keep the consistent prefix.
			continue
		}
		if rec.Key == "" {
			continue
		}
		latest[rec.Key] = rec
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("load provenance %s: %w", f.path, err)
	}
	return latest, lines, nil
}

// statLocked lazily measures the log's line count and live key set —
// purely to drive compaction. A failed scan (e.g. a record line beyond
// the scanner buffer) must never wedge the append path, which worked
// without ever reading the log before compaction existed: it disables
// compaction for this store instead. Caller holds f.mu.
func (f *FileProvenance) statLocked() {
	if f.lines >= 0 || f.threshold <= 0 {
		return
	}
	latest, lines, err := f.scanLocked()
	if err != nil {
		f.threshold = 0 // appends proceed; the log just stays uncompacted
		f.compactErrors++
		f.metCompactErrors.Inc()
		f.lines = 0
		f.keys = make(map[string]struct{})
		return
	}
	f.lines = lines
	f.keys = make(map[string]struct{}, len(latest))
	for k := range latest {
		f.keys[k] = struct{}{}
	}
}

// Load replays the log, newest record per key winning, returned in
// first-seen Seq order.
func (f *FileProvenance) Load() ([]ProvenanceRecord, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	latest, lines, err := f.scanLocked()
	if err != nil {
		return nil, err
	}
	f.lines = lines
	f.keys = make(map[string]struct{}, len(latest))
	out := make([]ProvenanceRecord, 0, len(latest))
	for k, rec := range latest {
		f.keys[k] = struct{}{}
		out = append(out, rec)
	}
	sortRecords(out)
	return out, nil
}

// Append writes one upsert record and flushes it.
func (f *FileProvenance) Append(rec ProvenanceRecord) error {
	return f.AppendBatch([]ProvenanceRecord{rec})
}

// AppendBatch writes several upsert records in one open/write/close
// cycle. The hub persists a whole mutation's dirty set (an arming that
// touched every device's pushedTo, a catch-up spanning many signatures)
// through this instead of reopening the log per record. When the
// append pushes the dead-line count past the compaction threshold, the
// log is rewritten as a snapshot before returning.
func (f *FileProvenance) AppendBatch(recs []ProvenanceRecord) error {
	var buf []byte
	for _, rec := range recs {
		if rec.Key == "" {
			return fmt.Errorf("append provenance: empty key")
		}
		b, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("append provenance: %w", err)
		}
		buf = append(buf, b...)
		buf = append(buf, '\n')
	}
	if len(buf) == 0 {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.statLocked()
	file, err := os.OpenFile(f.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("append provenance: %w", err)
	}
	if _, err := file.Write(buf); err != nil {
		file.Close()
		return fmt.Errorf("append provenance: %w", err)
	}
	file.Close()
	if f.keys != nil {
		f.lines += len(recs)
		for _, rec := range recs {
			f.keys[rec.Key] = struct{}{}
		}
	}
	if f.keys != nil && f.threshold > 0 && f.lines-len(f.keys) > f.threshold {
		// A failed compaction is not an append failure: the records just
		// written are durably in the log either way. The log stays fat
		// and the next append retries; only the failure count surfaces.
		if err := f.compactLocked(); err != nil {
			f.compactErrors++
			f.metCompactErrors.Inc()
		}
	}
	return nil
}

// compactLocked rewrites the log as a snapshot: the latest record per
// key in Seq order, written to a temp file, fsynced, and renamed over
// the log. Caller holds f.mu.
func (f *FileProvenance) compactLocked() error {
	latest, _, err := f.scanLocked()
	if err != nil {
		return err
	}
	recs := make([]ProvenanceRecord, 0, len(latest))
	for _, rec := range latest {
		recs = append(recs, rec)
	}
	sortRecords(recs)
	var buf []byte
	for _, rec := range recs {
		b, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		buf = append(buf, b...)
		buf = append(buf, '\n')
	}
	tmp := f.path + ".compact"
	file, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := file.Write(buf); err != nil {
		file.Close()
		os.Remove(tmp)
		return err
	}
	// Sync before rename: the rename must never become visible ahead of
	// the data it points to, or a crash window could surface an empty
	// snapshot in place of a healthy log.
	if err := file.Sync(); err != nil {
		file.Close()
		os.Remove(tmp)
		return err
	}
	if err := file.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, f.path); err != nil {
		os.Remove(tmp)
		return err
	}
	f.lines = len(recs)
	f.compactions++
	f.metCompactions.Inc()
	return nil
}

// sortRecords orders records by Seq (first-report order).
func sortRecords(recs []ProvenanceRecord) {
	sort.Slice(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
}

// MemProvenance is an in-memory ProvenanceStore for tests and
// simulations that still want restart semantics (a new Exchange over the
// same MemProvenance models a hub reboot without touching disk).
type MemProvenance struct {
	mu   sync.Mutex
	recs map[string]ProvenanceRecord
}

var _ ProvenanceStore = (*MemProvenance)(nil)

// NewMemProvenance returns an empty in-memory store.
func NewMemProvenance() *MemProvenance {
	return &MemProvenance{recs: make(map[string]ProvenanceRecord)}
}

// Load returns the latest record per key in Seq order.
func (m *MemProvenance) Load() ([]ProvenanceRecord, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]ProvenanceRecord, 0, len(m.recs))
	for _, rec := range m.recs {
		out = append(out, rec)
	}
	sortRecords(out)
	return out, nil
}

// Append upserts one record.
func (m *MemProvenance) Append(rec ProvenanceRecord) error {
	if rec.Key == "" {
		return fmt.Errorf("append provenance: empty key")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.recs[rec.Key] = rec
	return nil
}
