package immunity

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"

	"github.com/dimmunix/dimmunix/internal/immunity/wire"
)

// Durable fleet provenance. The hub's per-signature state — who saw it
// first, which devices independently confirmed it, which devices it was
// pushed to, whether it is armed — must survive hub restarts: a rebooted
// hub that forgot its confirmations would either re-arm below threshold
// (if it trusted re-reports it had itself pushed) or lose confirmations
// (forcing devices to re-observe a deadlock the fleet already paid for).
// The store is an upsert log keyed by signature key; Load replays it
// last-wins, so an append-only file implementation recovers its intact
// prefix after a crash.

// ProvenanceRecord is one signature's persisted fleet state.
type ProvenanceRecord struct {
	// Seq is the record's first-report order (1-based); it reconstructs
	// the hub's deterministic provenance ordering after a restart.
	Seq int `json:"seq"`
	// Key is the signature's canonical identity (core.Signature.Key).
	Key string `json:"key"`
	// Sig is the canonical wire encoding of the signature itself.
	Sig wire.Signature `json:"sig"`
	// FirstSeen is the device that first reported it.
	FirstSeen string `json:"first_seen"`
	// ConfirmedBy lists the devices that independently reported it.
	ConfirmedBy []string `json:"confirmed_by"`
	// PushedTo lists the devices the hub delivered the signature to; a
	// report from such a device is an echo, not a confirmation.
	PushedTo []string `json:"pushed_to"`
	// Armed reports fleet-wide arming.
	Armed bool `json:"armed"`
	// ArmEpoch is the fleet delta epoch assigned when the signature
	// armed (0 while unarmed). The hub's epoch counter resumes from the
	// maximum ArmEpoch in the store.
	ArmEpoch uint64 `json:"arm_epoch,omitempty"`
}

// ProvenanceStore persists hub provenance across restarts. Append
// upserts one record (last write per key wins on Load); Load returns the
// latest record per key. Implementations must be safe for concurrent
// use.
type ProvenanceStore interface {
	Load() ([]ProvenanceRecord, error)
	Append(rec ProvenanceRecord) error
}

// FileProvenance is a ProvenanceStore backed by a JSON-lines upsert log:
// one record per line, replayed last-wins. A line torn by a crash is
// skipped on load (the previous record for that key still stands), so
// the hub always reboots with a consistent — at worst slightly stale —
// view, never a corrupt one.
type FileProvenance struct {
	mu   sync.Mutex
	path string
}

var _ ProvenanceStore = (*FileProvenance)(nil)

// NewFileProvenance creates a store at path; the file is created on
// first append and a missing file loads as empty.
func NewFileProvenance(path string) *FileProvenance {
	return &FileProvenance{path: path}
}

// Path returns the backing file path.
func (f *FileProvenance) Path() string { return f.path }

// Load replays the log, newest record per key winning, returned in
// first-seen Seq order.
func (f *FileProvenance) Load() ([]ProvenanceRecord, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	file, err := os.Open(f.path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("load provenance: %w", err)
	}
	defer file.Close()

	latest := make(map[string]ProvenanceRecord)
	sc := bufio.NewScanner(file)
	sc.Buffer(make([]byte, 0, 64*1024), wire.MaxFrame)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec ProvenanceRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			// Torn tail or corrupt line: keep the consistent prefix.
			continue
		}
		if rec.Key == "" {
			continue
		}
		latest[rec.Key] = rec
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("load provenance %s: %w", f.path, err)
	}
	out := make([]ProvenanceRecord, 0, len(latest))
	for _, rec := range latest {
		out = append(out, rec)
	}
	sortRecords(out)
	return out, nil
}

// Append writes one upsert record and flushes it.
func (f *FileProvenance) Append(rec ProvenanceRecord) error {
	return f.AppendBatch([]ProvenanceRecord{rec})
}

// AppendBatch writes several upsert records in one open/write/close
// cycle. The hub persists a whole mutation's dirty set (an arming that
// touched every device's pushedTo, a catch-up spanning many signatures)
// through this instead of reopening the log per record.
func (f *FileProvenance) AppendBatch(recs []ProvenanceRecord) error {
	var buf []byte
	for _, rec := range recs {
		if rec.Key == "" {
			return fmt.Errorf("append provenance: empty key")
		}
		b, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("append provenance: %w", err)
		}
		buf = append(buf, b...)
		buf = append(buf, '\n')
	}
	if len(buf) == 0 {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	file, err := os.OpenFile(f.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("append provenance: %w", err)
	}
	defer file.Close()
	if _, err := file.Write(buf); err != nil {
		return fmt.Errorf("append provenance: %w", err)
	}
	return nil
}

// sortRecords orders records by Seq (first-report order).
func sortRecords(recs []ProvenanceRecord) {
	sort.Slice(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
}

// MemProvenance is an in-memory ProvenanceStore for tests and
// simulations that still want restart semantics (a new Exchange over the
// same MemProvenance models a hub reboot without touching disk).
type MemProvenance struct {
	mu   sync.Mutex
	recs map[string]ProvenanceRecord
}

var _ ProvenanceStore = (*MemProvenance)(nil)

// NewMemProvenance returns an empty in-memory store.
func NewMemProvenance() *MemProvenance {
	return &MemProvenance{recs: make(map[string]ProvenanceRecord)}
}

// Load returns the latest record per key in Seq order.
func (m *MemProvenance) Load() ([]ProvenanceRecord, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]ProvenanceRecord, 0, len(m.recs))
	for _, rec := range m.recs {
		out = append(out, rec)
	}
	sortRecords(out)
	return out, nil
}

// Append upserts one record.
func (m *MemProvenance) Append(rec ProvenanceRecord) error {
	if rec.Key == "" {
		return fmt.Errorf("append provenance: empty key")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.recs[rec.Key] = rec
	return nil
}
