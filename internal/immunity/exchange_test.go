package immunity

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/dimmunix/dimmunix/internal/core"
	"github.com/dimmunix/dimmunix/internal/immunity/wire"
)

// newTestHub builds a hub that is torn down with the test.
func newTestHub(t *testing.T, threshold int, opts ...ExchangeOption) *Exchange {
	t.Helper()
	hub, err := NewExchange(threshold, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(hub.Close)
	return hub
}

// phoneSim is one simulated device: a service with a live subscribed core.
type phoneSim struct {
	svc    *Service
	proc   *core.Core
	client *ExchangeClient
}

// fleetSim builds n phones connected to the hub over its loopback
// transport.
func fleetSim(t *testing.T, hub *Exchange, n int) []*phoneSim {
	t.Helper()
	lb := NewLoopback(hub)
	phones := make([]*phoneSim, n)
	for i := range phones {
		svc, err := NewService(fmt.Sprintf("phone%d", i), nil)
		if err != nil {
			t.Fatal(err)
		}
		proc, _ := attach(t, svc, "app")
		client, err := Connect(lb, svc.Name(), svc)
		if err != nil {
			t.Fatal(err)
		}
		phones[i] = &phoneSim{svc: svc, proc: proc, client: client}
		t.Cleanup(func() { client.Close(); svc.Close() })
	}
	return phones
}

// armedOn reports whether the phone's live process has the signature.
func (p *phoneSim) armedOn(key string) bool {
	for _, info := range p.proc.History() {
		sig := &core.Signature{Kind: info.Kind, Pairs: info.Pairs}
		if sig.Key() == key {
			return true
		}
	}
	return false
}

// TestExchangeThresholdGating: with confirm-before-arm = 2, one device's
// report must NOT arm the fleet; the second distinct device's report must.
func TestExchangeThresholdGating(t *testing.T) {
	hub := newTestHub(t, 2)
	phones := fleetSim(t, hub, 4)
	key := testSig(0).Key()

	// Device 0 detects the deadlock.
	if _, _, err := phones[0].svc.Publish("local", testSig(0)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "hub sees first report", func() bool { return len(hub.Provenance()) == 1 })
	prov := hub.Provenance()[0]
	if prov.Armed || prov.Confirmations != 1 || prov.FirstSeen != "phone0" {
		t.Fatalf("after one report: %+v, want unarmed/1 confirm/first-seen phone0", prov)
	}
	// The other devices must stay unarmed (give propagation a real chance
	// to misfire before asserting).
	time.Sleep(20 * time.Millisecond)
	for i := 1; i < 4; i++ {
		if phones[i].armedOn(key) {
			t.Fatalf("phone%d armed below the confirmation threshold", i)
		}
	}
	// Re-report from the SAME device: still one confirmation, still
	// gated. The service would dedup a second Publish before it reached
	// the hub, so drive the hub's own same-device guard directly.
	hub.report("phone0", testSig(0))
	if prov := hub.Provenance()[0]; prov.Armed || prov.Confirmations != 1 {
		t.Fatalf("same-device re-report changed provenance: %+v", prov)
	}

	// Device 1 independently confirms: the fleet arms.
	if _, _, err := phones[1].svc.Publish("local", testSig(0)); err != nil {
		t.Fatal(err)
	}
	for i, p := range phones {
		ph := p
		waitFor(t, fmt.Sprintf("phone%d armed after threshold", i), func() bool { return ph.armedOn(key) })
	}
	prov = hub.Provenance()[0]
	if !prov.Armed || prov.Confirmations != 2 {
		t.Fatalf("after threshold: %+v, want armed with 2 confirmations", prov)
	}
	if got := prov.ConfirmedBy; len(got) != 2 || got[0] != "phone0" || got[1] != "phone1" {
		t.Fatalf("confirmed-by = %v, want [phone0 phone1]", got)
	}
	// The hub's stats agree with the provenance.
	stats := hub.Stats()
	if stats.Epoch != 1 || stats.Confirmations != 2 {
		t.Fatalf("stats = %+v, want epoch 1 with 2 confirmations", stats)
	}
}

// TestExchangeNoEchoConfirmation: a signature pushed to a device by the
// hub must not come back as that device's confirmation.
func TestExchangeNoEchoConfirmation(t *testing.T) {
	hub := newTestHub(t, 1)
	phones := fleetSim(t, hub, 3)
	key := testSig(0).Key()

	if _, _, err := phones[0].svc.Publish("local", testSig(0)); err != nil {
		t.Fatal(err)
	}
	for i, p := range phones {
		ph := p
		waitFor(t, fmt.Sprintf("phone%d armed", i), func() bool { return ph.armedOn(key) })
	}
	// Everyone has it; only phone0 observed it.
	time.Sleep(10 * time.Millisecond)
	prov := hub.Provenance()[0]
	if prov.Confirmations != 1 || prov.FirstSeen != "phone0" {
		t.Fatalf("echoed confirmations: %+v, want exactly 1 from phone0", prov)
	}
}

// TestExchangeCatchupOnConnect: a device joining after arming receives the
// armed set immediately; its pre-existing local history is reported
// upward as a confirmation.
func TestExchangeCatchupOnConnect(t *testing.T) {
	hub := newTestHub(t, 1)
	phones := fleetSim(t, hub, 2)
	key := testSig(0).Key()
	if _, _, err := phones[0].svc.Publish("local", testSig(0)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "fleet armed", func() bool { return hub.ArmedCount() == 1 })

	// A new phone joins late, with its own pre-existing local antibody.
	svc, err := NewService("phone-late", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if _, _, err := svc.Publish("local", testSig(5)); err != nil {
		t.Fatal(err)
	}
	proc, _ := attach(t, svc, "app")
	client, err := Connect(NewLoopback(hub), "phone-late", svc)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	late := &phoneSim{svc: svc, proc: proc, client: client}
	waitFor(t, "late phone receives armed set", func() bool { return late.armedOn(key) })
	// Its local history reached the hub (threshold 1 → arms and spreads).
	key5 := testSig(5).Key()
	for i, p := range phones {
		ph := p
		waitFor(t, fmt.Sprintf("phone%d armed with late antibody", i), func() bool { return ph.armedOn(key5) })
	}
	for _, prov := range hub.Provenance() {
		if prov.Key == key5 && prov.FirstSeen != "phone-late" {
			t.Fatalf("late antibody provenance: %+v", prov)
		}
	}
	// Resubscribe-from-epoch: the late client ends at the hub's epoch.
	waitFor(t, "late client at hub epoch", func() bool {
		return late.client.FleetEpoch() == uint64(hub.ArmedCount())
	})
}

// TestExchangeReconnectDoesNotEchoConfirmation: a device that received a
// signature from the hub and then reconnects (its fresh client has no
// in-memory echo guard, and the epoch-0 catch-up re-reports its whole
// local history — which now contains the pushed signature) must not be
// counted as a new confirmation: the hub remembers who it pushed to.
func TestExchangeReconnectDoesNotEchoConfirmation(t *testing.T) {
	hub := newTestHub(t, 1)
	phones := fleetSim(t, hub, 2)
	key := testSig(0).Key()

	if _, _, err := phones[0].svc.Publish("local", testSig(0)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "phone1 armed", func() bool { return phones[1].armedOn(key) })

	// phone1 reconnects: its service history now includes the pushed
	// signature, and the fresh client re-reports everything from epoch 0.
	phones[1].client.Close()
	client, err := Connect(NewLoopback(hub), "phone1", phones[1].svc)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	time.Sleep(20 * time.Millisecond) // let the re-report (wrongly) land
	prov := hub.Provenance()[0]
	if prov.Confirmations != 1 || prov.ConfirmedBy[0] != "phone0" {
		t.Fatalf("reconnect echoed a confirmation: %+v, want exactly 1 from phone0", prov)
	}
}

// TestExchangeDuplicateHelloRefused: a second hello on one session is a
// protocol violation — accepting it would leave the first device id
// mapped to this Conn in the hub's registry, recording pushes against a
// device that never received them.
func TestExchangeDuplicateHelloRefused(t *testing.T) {
	hub := newTestHub(t, 1)
	var mu sync.Mutex
	var acks []wire.Ack
	conn, err := hub.Accept(func(m wire.Message) error {
		if m.Type == wire.TypeAck {
			mu.Lock()
			acks = append(acks, *m.Ack)
			mu.Unlock()
		}
		return nil
	}, func() {})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hello := func(device string) wire.Message {
		return wire.Message{V: wire.Version, Type: wire.TypeHello, Hello: &wire.Hello{Device: device}}
	}
	if err := conn.Handle(hello("phoneA")); err != nil {
		t.Fatal(err)
	}
	if err := conn.Handle(hello("phoneB")); err == nil {
		t.Fatal("duplicate hello accepted")
	}
	conn.Close()
	waitFor(t, "refusal ack delivered", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(acks) == 2 && !acks[1].OK
	})
	if hub.Stats().Devices != 0 {
		t.Fatalf("device registry leaked an entry: %+v", hub.Stats())
	}
}

// TestLoopbackRefusalIsPermanent: over loopback a handshake refusal
// surfaces as a synchronous Send error; it must still classify as a
// permanent Connect failure (matching TCP), not retry forever.
func TestLoopbackRefusalIsPermanent(t *testing.T) {
	hub := newTestHub(t, 1)
	svc, err := NewService("old-phone", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	start := time.Now()
	if _, err := Connect(badVersionTransport{NewLoopback(hub)}, "old-phone", svc); err == nil {
		t.Fatal("version-mismatched loopback Connect succeeded")
	} else if !strings.Contains(err.Error(), "version") {
		t.Fatalf("refusal error %q does not carry the hub's reason", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("loopback refusal took a full hello timeout instead of failing on the ack")
	}
}

// TestExchangeHandleRejectsMalformedEnvelopes: Handle is the hub's API
// for any transport; a structurally broken envelope (missing or wrong
// payload) must come back as a protocol error, never a panic.
func TestExchangeHandleRejectsMalformedEnvelopes(t *testing.T) {
	hub := newTestHub(t, 1)
	conn, err := hub.Accept(func(wire.Message) error { return nil }, func() {})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	cases := []wire.Message{
		{V: wire.Version, Type: wire.TypeHello},  // nil payload
		{V: wire.Version, Type: wire.TypeReport}, // nil payload, pre-hello too
		{V: wire.Version, Type: wire.TypeHello, Hello: &wire.Hello{Device: "d"}, Ack: &wire.Ack{}},
		{V: wire.Version, Type: "teleport"},
	}
	for i, m := range cases {
		if err := conn.Handle(m); err == nil {
			t.Errorf("case %d: malformed envelope %+v accepted", i, m)
		}
	}
}

// TestExchangeSupersedeConnect: a second session for the same device id
// supersedes the first — over TCP a phone redials before the hub notices
// the stale socket died, so a duplicate hello must win, not bounce.
func TestExchangeSupersedeConnect(t *testing.T) {
	hub := newTestHub(t, 2)
	svc, err := NewService("phone0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	c1, err := Connect(NewLoopback(hub), "phone0", svc)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Connect(NewLoopback(hub), "phone0", svc)
	if err != nil {
		t.Fatalf("superseding connect must succeed: %v", err)
	}
	defer c2.Close()
	waitFor(t, "one device registered", func() bool { return hub.Stats().Devices == 1 })

	// The device's confirmation state accrues to the one identity.
	if _, _, err := svc.Publish("local", testSig(0)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "report landed", func() bool { return len(hub.Provenance()) == 1 })
	if prov := hub.Provenance()[0]; prov.Confirmations != 1 || prov.FirstSeen != "phone0" {
		t.Fatalf("provenance after supersede: %+v", prov)
	}
}
