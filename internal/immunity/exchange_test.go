package immunity

import (
	"fmt"
	"testing"
	"time"

	"github.com/dimmunix/dimmunix/internal/core"
)

// phoneSim is one simulated device: a service with a live subscribed core.
type phoneSim struct {
	svc    *Service
	proc   *core.Core
	client *ExchangeClient
}

// fleetSim builds n phones connected to a fresh hub with the given
// threshold.
func fleetSim(t *testing.T, hub *Exchange, n int) []*phoneSim {
	t.Helper()
	phones := make([]*phoneSim, n)
	for i := range phones {
		svc, err := NewService(fmt.Sprintf("phone%d", i), nil)
		if err != nil {
			t.Fatal(err)
		}
		proc, _ := attach(t, svc, "app")
		client, err := hub.Connect(svc.Name(), svc)
		if err != nil {
			t.Fatal(err)
		}
		phones[i] = &phoneSim{svc: svc, proc: proc, client: client}
		t.Cleanup(func() { client.Close(); svc.Close() })
	}
	return phones
}

// armedOn reports whether the phone's live process has the signature.
func (p *phoneSim) armedOn(key string) bool {
	for _, info := range p.proc.History() {
		sig := &core.Signature{Kind: info.Kind, Pairs: info.Pairs}
		if sig.Key() == key {
			return true
		}
	}
	return false
}

// TestExchangeThresholdGating: with confirm-before-arm = 2, one device's
// report must NOT arm the fleet; the second distinct device's report must.
func TestExchangeThresholdGating(t *testing.T) {
	hub := NewExchange(2)
	defer hub.Close()
	phones := fleetSim(t, hub, 4)
	key := testSig(0).Key()

	// Device 0 detects the deadlock.
	if _, _, err := phones[0].svc.Publish("local", testSig(0)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "hub sees first report", func() bool { return len(hub.Provenance()) == 1 })
	prov := hub.Provenance()[0]
	if prov.Armed || prov.Confirmations != 1 || prov.FirstSeen != "phone0" {
		t.Fatalf("after one report: %+v, want unarmed/1 confirm/first-seen phone0", prov)
	}
	// The other devices must stay unarmed (give propagation a real chance
	// to misfire before asserting).
	time.Sleep(20 * time.Millisecond)
	for i := 1; i < 4; i++ {
		if phones[i].armedOn(key) {
			t.Fatalf("phone%d armed below the confirmation threshold", i)
		}
	}
	// Re-report from the SAME device: still one confirmation, still
	// gated. The service would dedup a second Publish before it reached
	// the hub, so drive the hub's own same-device guard directly.
	hub.report("phone0", testSig(0))
	if prov := hub.Provenance()[0]; prov.Armed || prov.Confirmations != 1 {
		t.Fatalf("same-device re-report changed provenance: %+v", prov)
	}

	// Device 1 independently confirms: the fleet arms.
	if _, _, err := phones[1].svc.Publish("local", testSig(0)); err != nil {
		t.Fatal(err)
	}
	for i, p := range phones {
		ph := p
		waitFor(t, fmt.Sprintf("phone%d armed after threshold", i), func() bool { return ph.armedOn(key) })
	}
	prov = hub.Provenance()[0]
	if !prov.Armed || prov.Confirmations != 2 {
		t.Fatalf("after threshold: %+v, want armed with 2 confirmations", prov)
	}
	if got := prov.ConfirmedBy; len(got) != 2 || got[0] != "phone0" || got[1] != "phone1" {
		t.Fatalf("confirmed-by = %v, want [phone0 phone1]", got)
	}
}

// TestExchangeNoEchoConfirmation: a signature pushed to a device by the
// hub must not come back as that device's confirmation.
func TestExchangeNoEchoConfirmation(t *testing.T) {
	hub := NewExchange(1)
	defer hub.Close()
	phones := fleetSim(t, hub, 3)
	key := testSig(0).Key()

	if _, _, err := phones[0].svc.Publish("local", testSig(0)); err != nil {
		t.Fatal(err)
	}
	for i, p := range phones {
		ph := p
		waitFor(t, fmt.Sprintf("phone%d armed", i), func() bool { return ph.armedOn(key) })
	}
	// Everyone has it; only phone0 observed it.
	time.Sleep(10 * time.Millisecond)
	prov := hub.Provenance()[0]
	if prov.Confirmations != 1 || prov.FirstSeen != "phone0" {
		t.Fatalf("echoed confirmations: %+v, want exactly 1 from phone0", prov)
	}
}

// TestExchangeCatchupOnConnect: a device joining after arming receives the
// armed set immediately; its pre-existing local history is reported
// upward as a confirmation.
func TestExchangeCatchupOnConnect(t *testing.T) {
	hub := NewExchange(1)
	defer hub.Close()
	phones := fleetSim(t, hub, 2)
	key := testSig(0).Key()
	if _, _, err := phones[0].svc.Publish("local", testSig(0)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "fleet armed", func() bool { return hub.ArmedCount() == 1 })

	// A new phone joins late, with its own pre-existing local antibody.
	svc, err := NewService("phone-late", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if _, _, err := svc.Publish("local", testSig(5)); err != nil {
		t.Fatal(err)
	}
	proc, _ := attach(t, svc, "app")
	client, err := hub.Connect("phone-late", svc)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	late := &phoneSim{svc: svc, proc: proc, client: client}
	waitFor(t, "late phone receives armed set", func() bool { return late.armedOn(key) })
	// Its local history reached the hub (threshold 1 → arms and spreads).
	key5 := testSig(5).Key()
	for i, p := range phones {
		ph := p
		waitFor(t, fmt.Sprintf("phone%d armed with late antibody", i), func() bool { return ph.armedOn(key5) })
	}
	for _, prov := range hub.Provenance() {
		if prov.Key == key5 && prov.FirstSeen != "phone-late" {
			t.Fatalf("late antibody provenance: %+v", prov)
		}
	}
}

// TestExchangeReconnectDoesNotEchoConfirmation: a device that received a
// signature from the hub and then reconnects (its fresh client has no
// in-memory echo guard, and the epoch-0 catch-up re-reports its whole
// local history — which now contains the pushed signature) must not be
// counted as a new confirmation: the hub remembers who it pushed to.
func TestExchangeReconnectDoesNotEchoConfirmation(t *testing.T) {
	hub := NewExchange(1)
	defer hub.Close()
	phones := fleetSim(t, hub, 2)
	key := testSig(0).Key()

	if _, _, err := phones[0].svc.Publish("local", testSig(0)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "phone1 armed", func() bool { return phones[1].armedOn(key) })

	// phone1 reconnects: its service history now includes the pushed
	// signature, and the fresh client re-reports everything from epoch 0.
	phones[1].client.Close()
	client, err := hub.Connect("phone1", phones[1].svc)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	time.Sleep(20 * time.Millisecond) // let the re-report (wrongly) land
	prov := hub.Provenance()[0]
	if prov.Confirmations != 1 || prov.ConfirmedBy[0] != "phone0" {
		t.Fatalf("reconnect echoed a confirmation: %+v, want exactly 1 from phone0", prov)
	}
}

// TestExchangeDuplicateConnect: one device id can hold only one live
// connection.
func TestExchangeDuplicateConnect(t *testing.T) {
	hub := NewExchange(1)
	defer hub.Close()
	svc, err := NewService("phone0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	c1, err := hub.Connect("phone0", svc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hub.Connect("phone0", svc); err == nil {
		t.Fatal("duplicate connect must fail")
	}
	c1.Close()
	c2, err := hub.Connect("phone0", svc)
	if err != nil {
		t.Fatalf("reconnect after close: %v", err)
	}
	c2.Close()
}
