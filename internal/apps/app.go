package apps

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dimmunix/dimmunix/internal/core"
	"github.com/dimmunix/dimmunix/internal/metrics"
	"github.com/dimmunix/dimmunix/internal/vm"
)

// ReplayConfig tunes a profile replay.
type ReplayConfig struct {
	// InsideWork is the busy-loop iteration count inside each critical
	// section (simulated computation holding the lock; the paper's
	// microbenchmark uses busy waits because sleeps hide overhead).
	InsideWork int
	// OutsideWork is the busy-loop iteration count between operations.
	OutsideWork int
	// SamplePeriod is the throughput meter's sampling period.
	SamplePeriod time.Duration
	// Seed makes lock/site selection reproducible.
	Seed int64
}

// DefaultReplayConfig returns the standard replay tuning.
func DefaultReplayConfig() ReplayConfig {
	return ReplayConfig{
		InsideWork:   40,
		OutsideWork:  120,
		SamplePeriod: 100 * time.Millisecond,
		Seed:         1,
	}
}

// Replay is a running application workload.
type Replay struct {
	Profile Profile
	Proc    *vm.Process

	cfg   ReplayConfig
	locks []*vm.Object
	sites []core.Frame
	meter *metrics.Meter

	busyIters atomic.Int64
	stop      chan struct{}
	stopOnce  sync.Once
	start     chan struct{}
	warmWG    sync.WaitGroup
	threads   []*vm.Thread
	started   time.Time
}

// Result summarizes a finished replay.
type Result struct {
	// Profile is the replayed application.
	Profile Profile
	// Dimmunix reports whether the process ran with immunity.
	Dimmunix bool
	// Wall is the replay duration.
	Wall time.Duration
	// AvgSyncsPerSec is the overall average synchronization throughput.
	AvgSyncsPerSec float64
	// PeakSyncsPerSec is the paper's metric: the highest average
	// throughput over any window of PeakWidth.
	PeakSyncsPerSec float64
	// PeakWidth is the peak-selection window (the scaled stand-in for the
	// paper's 30 seconds).
	PeakWidth time.Duration
	// BusyTime is the accumulated simulated computation time (for the
	// power model).
	BusyTime time.Duration
	// CoreBytes is the measured core footprint (0 for vanilla).
	CoreBytes int64
	// VMSyncBytes is the measured VM synchronization footprint.
	VMSyncBytes int64
	// Stats is the process counter snapshot.
	Stats vm.ProcessStats
}

// StartReplay forks a process for the profile from the Zygote and starts
// its workload threads.
func StartReplay(z *vm.Zygote, profile Profile, cfg ReplayConfig) (*Replay, error) {
	proc, err := z.Fork(profile.Package)
	if err != nil {
		return nil, fmt.Errorf("replay %s: %w", profile.Name, err)
	}
	return AttachReplay(proc, profile, cfg)
}

// AttachReplay starts the profile's workload threads on an existing
// process (e.g. an app forked by the Phone). The process is killed when
// the replay stops.
func AttachReplay(proc *vm.Process, profile Profile, cfg ReplayConfig) (*Replay, error) {
	r := &Replay{
		Profile: profile,
		Proc:    proc,
		cfg:     cfg,
		sites:   profile.sitePositions(),
		stop:    make(chan struct{}),
		start:   make(chan struct{}),
	}
	r.locks = make([]*vm.Object, profile.Locks)
	for i := range r.locks {
		r.locks[i] = proc.NewObject(fmt.Sprintf("%s.lock%d", profile.Name, i))
	}
	r.meter = metrics.NewMeter(proc.SyncCount)

	perThreadRate := profile.SyncsPerSec / float64(profile.Threads)
	period := time.Duration(float64(time.Second) / perThreadRate)
	r.warmWG.Add(profile.Threads)
	for i := 0; i < profile.Threads; i++ {
		idx := i
		th, err := proc.Start(fmt.Sprintf("%s-t%d", profile.Name, i), func(t *vm.Thread) {
			r.worker(t, idx, period)
		})
		if err != nil {
			proc.Kill()
			return nil, fmt.Errorf("replay %s: %w", profile.Name, err)
		}
		r.threads = append(r.threads, th)
	}

	// Wait for the startup warmup (app initialization) to finish before
	// measurement begins: the paced steady state is what Table 1 profiles.
	warmed := make(chan struct{})
	go func() {
		r.warmWG.Wait()
		close(warmed)
	}()
	select {
	case <-warmed:
	case <-time.After(30 * time.Second):
		proc.Kill()
		return nil, fmt.Errorf("replay %s: warmup hung", profile.Name)
	}
	r.started = time.Now()
	r.meter.Start(cfg.SamplePeriod)
	close(r.start)
	return r, nil
}

// worker issues paced synchronized operations over the lock pool. A
// startup warmup pass touches this thread's slice of the pool once —
// applications synchronize on most of their objects during initialization,
// and under Dimmunix that first monitorenter is what fattens the lock, so
// the fattened population (the memory-overhead driver) is established at
// startup rather than trickling in with the paced load.
func (r *Replay) worker(t *vm.Thread, idx int, period time.Duration) {
	rng := rand.New(rand.NewSource(r.cfg.Seed + int64(idx)))
	nLocks := len(r.locks)
	nSites := len(r.sites)
	threads := max(1, r.Profile.Threads)
	warmSite := r.sites[idx%nSites]
	for i := idx; i < nLocks; i += threads {
		if r.Proc.Killed() {
			r.warmWG.Done()
			return
		}
		t.Call(warmSite.Class, warmSite.Method, warmSite.Line, func() {
			r.locks[i].Synchronized(t, func() {})
		})
	}
	r.warmWG.Done()
	select {
	case <-r.start:
	case <-r.stop:
		return
	}

	lockCursor := idx * (nLocks / threads)
	stride := 1 + rng.Intn(7)*2 // odd-ish stride scatters accesses

	// Stagger thread phases across one period so the aggregate load is
	// smooth rather than a burst at every period boundary (real app
	// threads are not phase-aligned).
	offset := time.Duration(int64(period) * int64(idx) / int64(threads))
	select {
	case <-time.After(offset):
	case <-r.stop:
		return
	}

	next := time.Now()
	for k := 0; ; k++ {
		select {
		case <-r.stop:
			return
		default:
		}
		if r.Proc.Killed() {
			return
		}

		lock := r.locks[lockCursor%nLocks]
		lockCursor += stride
		site := r.sites[(idx+k)%nSites]

		t.Call(site.Class, site.Method, site.Line, func() {
			lock.Synchronized(t, func() {
				busyWork(r.cfg.InsideWork)
			})
		})
		busyWork(r.cfg.OutsideWork)
		r.busyIters.Add(int64(r.cfg.InsideWork + r.cfg.OutsideWork))

		// Pace to the profiled per-thread rate.
		next = next.Add(period)
		if d := time.Until(next); d > 0 {
			select {
			case <-r.stop:
				return
			case <-time.After(d):
			}
		} else {
			next = time.Now() // fell behind: don't accumulate debt
		}
	}
}

// busySink defeats dead-code elimination of the busy loops.
var busySink atomic.Uint64

// busyWork simulates computation: the paper uses busy waits, not sleeps,
// "because they hide the performance overhead".
func busyWork(iters int) {
	var acc uint64
	for i := 0; i < iters; i++ {
		acc = acc*1664525 + 1013904223
	}
	busySink.Add(acc)
}

// busyIterCost measures the cost of one busy-work iteration once; the
// replay's CPU busy time is iterations × this cost. Counting iterations
// instead of timing each call keeps the accounting above the clock's
// resolution (the per-op loops are tens of nanoseconds) and immune to
// scheduler preemption inflating wall time.
var (
	busyCostOnce  sync.Once
	busyIterNanos float64
)

func busyIterCost() float64 {
	busyCostOnce.Do(func() {
		const probe = 5_000_000
		start := time.Now()
		busyWork(probe)
		busyIterNanos = float64(time.Since(start).Nanoseconds()) / probe
	})
	return busyIterNanos
}

// Stop ends the replay and returns its results. The process is killed
// (replay processes are disposable). Stop is idempotent; results are
// computed on the first call.
func (r *Replay) Stop(peakWidth time.Duration) Result {
	r.stopOnce.Do(func() { close(r.stop) })
	r.Proc.Join(10 * time.Second)
	r.meter.Stop()
	wall := time.Since(r.started)

	res := Result{
		Profile:        r.Profile,
		Dimmunix:       r.Proc.Dimmunix() != nil,
		Wall:           wall,
		AvgSyncsPerSec: r.meter.Rate(),
		PeakWidth:      peakWidth,
		BusyTime:       time.Duration(float64(r.busyIters.Load()) * busyIterCost()),
		VMSyncBytes:    r.Proc.SyncFootprint(),
		Stats:          r.Proc.Stats(),
	}
	if peak, _, _, ok := r.meter.PeakWindow(peakWidth); ok {
		res.PeakSyncsPerSec = peak
	} else {
		res.PeakSyncsPerSec = res.AvgSyncsPerSec
	}
	if dim := r.Proc.Dimmunix(); dim != nil {
		res.CoreBytes = dim.MemStats().Bytes
	}
	r.Proc.Kill()
	return res
}

// RunProfile is the convenience one-shot: replay a profile for the given
// duration on a fresh Zygote and return the result.
func RunProfile(profile Profile, dimmunix bool, duration, peakWidth time.Duration, cfg ReplayConfig) (Result, error) {
	z := vm.NewZygote(vm.WithDimmunix(dimmunix))
	r, err := StartReplay(z, profile, cfg)
	if err != nil {
		return Result{}, err
	}
	time.Sleep(duration)
	return r.Stop(peakWidth), nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
