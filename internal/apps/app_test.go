package apps

import (
	"testing"
	"time"

	"github.com/dimmunix/dimmunix/internal/vm"
)

func TestTable1ProfilesMatchPaper(t *testing.T) {
	profiles := Table1()
	if len(profiles) != 8 {
		t.Fatalf("Table1 has %d apps, want 8", len(profiles))
	}
	want := map[string]struct {
		threads int
		syncs   float64
		vanMB   float64
		dimMB   float64
	}{
		"Email":       {46, 1952, 15.0, 15.8},
		"Browser":     {61, 1411, 37.9, 38.9},
		"Maps":        {119, 1143, 22.9, 23.7},
		"Market":      {78, 891, 17.3, 17.9},
		"Calendar":    {26, 815, 14.0, 14.4},
		"Talk":        {33, 527, 10.7, 11.2},
		"Angry Birds": {23, 325, 29.3, 29.7},
		"Camera":      {26, 309, 11.4, 11.8},
	}
	for _, p := range profiles {
		w, ok := want[p.Name]
		if !ok {
			t.Errorf("unexpected app %q", p.Name)
			continue
		}
		if p.Threads != w.threads || p.SyncsPerSec != w.syncs || p.VanillaMB != w.vanMB || p.DimmunixMB != w.dimMB {
			t.Errorf("%s = %d/%v/%v/%v, want %+v", p.Name, p.Threads, p.SyncsPerSec, p.VanillaMB, p.DimmunixMB, w)
		}
		// Paper band: per-app memory overhead 1.3–5.3%.
		ovh := (p.DimmunixMB - p.VanillaMB) / p.VanillaMB * 100
		if ovh < 1.2 || ovh > 5.5 {
			t.Errorf("%s paper overhead %.1f%% outside 1.3-5.3 band", p.Name, ovh)
		}
	}
	if _, err := ProfileByName("Email"); err != nil {
		t.Error(err)
	}
	if _, err := ProfileByName("Solitaire"); err == nil {
		t.Error("unknown profile must error")
	}
}

func TestProfileSitesAreValidAndDistinct(t *testing.T) {
	for _, p := range Table1() {
		frames := p.sitePositions()
		if len(frames) != p.Sites {
			t.Errorf("%s: %d frames, want %d", p.Name, len(frames), p.Sites)
		}
		seen := map[string]bool{}
		for _, f := range frames {
			if err := f.Validate(); err != nil {
				t.Errorf("%s: invalid frame %v: %v", p.Name, f, err)
			}
			key := f.String()
			if seen[key] {
				t.Errorf("%s: duplicate site %s", p.Name, key)
			}
			seen[key] = true
		}
	}
}

// smallProfile returns a scaled-down profile for fast tests.
func smallProfile() Profile {
	return Profile{
		Name: "TestApp", Package: "com.test.app",
		Threads: 4, SyncsPerSec: 400, VanillaMB: 10.0,
		Locks: 64, Sites: 12,
		Classes: []string{"com.test.app.Main", "com.test.app.Worker"},
	}
}

func TestReplayRunsAndStops(t *testing.T) {
	res, err := RunProfile(smallProfile(), true, 400*time.Millisecond, 100*time.Millisecond, DefaultReplayConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Dimmunix {
		t.Error("expected a dimmunix run")
	}
	if res.Stats.SyncOps == 0 {
		t.Fatal("replay performed no synchronizations")
	}
	if res.AvgSyncsPerSec <= 0 || res.PeakSyncsPerSec < res.AvgSyncsPerSec*0.5 {
		t.Errorf("rates: avg=%v peak=%v", res.AvgSyncsPerSec, res.PeakSyncsPerSec)
	}
	if res.BusyTime <= 0 {
		t.Error("busy time not accounted")
	}
	if res.CoreBytes <= 0 {
		t.Error("dimmunix core footprint not measured")
	}
	if res.Stats.Threads != 4 {
		t.Errorf("threads = %d, want 4", res.Stats.Threads)
	}
}

func TestReplayApproachesTargetRate(t *testing.T) {
	p := smallProfile()
	res, err := RunProfile(p, false, 700*time.Millisecond, 200*time.Millisecond, DefaultReplayConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Loose tolerance: pacing accuracy depends on host scheduling.
	if res.AvgSyncsPerSec < p.SyncsPerSec*0.4 || res.AvgSyncsPerSec > p.SyncsPerSec*1.6 {
		t.Errorf("avg rate %v too far from target %v", res.AvgSyncsPerSec, p.SyncsPerSec)
	}
}

func TestReplayFattensLockPopulationUnderDimmunix(t *testing.T) {
	p := smallProfile()
	dim, err := RunProfile(p, true, 500*time.Millisecond, 100*time.Millisecond, DefaultReplayConfig())
	if err != nil {
		t.Fatal(err)
	}
	van, err := RunProfile(p, false, 500*time.Millisecond, 100*time.Millisecond, DefaultReplayConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Under Dimmunix every touched lock fattens; vanilla fattens only on
	// contention. The memory-overhead mechanism depends on this gap.
	if dim.Stats.Monitors <= van.Stats.Monitors {
		t.Errorf("monitors: dimmunix=%d vanilla=%d, want dimmunix > vanilla",
			dim.Stats.Monitors, van.Stats.Monitors)
	}
	if dim.Stats.Monitors < p.Locks {
		t.Errorf("dimmunix fattened %d of %d locks; stride walk must cover the pool",
			dim.Stats.Monitors, p.Locks)
	}
	if dim.VMSyncBytes <= van.VMSyncBytes {
		t.Error("dimmunix VM sync footprint must exceed vanilla")
	}
}

func TestRunTable1Small(t *testing.T) {
	profiles := []Profile{smallProfile()}
	rep, err := RunTable1(profiles, 400*time.Millisecond, 100*time.Millisecond, DefaultReplayConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rep.Rows))
	}
	row := rep.Rows[0]
	if row.Memory.DimmunixMB() <= row.Memory.VanillaMB {
		t.Error("dimmunix memory must exceed vanilla")
	}
	if rep.PowerVanilla.AppsAndOSPct <= 0 || rep.PowerDimmunix.AppsAndOSPct <= 0 {
		t.Error("power attribution missing")
	}
	// The normalized attribution must sit near the paper's 14%.
	if rep.PowerVanilla.AppsAndOSPct < 12 || rep.PowerVanilla.AppsAndOSPct > 16 {
		t.Errorf("vanilla apps+os share = %.1f%%, want ~14%%", rep.PowerVanilla.AppsAndOSPct)
	}
	if out := rep.Format(); len(out) == 0 {
		t.Error("empty report")
	}
}

func TestTable1RowPerfOverhead(t *testing.T) {
	row := Table1Row{VanillaSyncsPerSec: 1000, DimmunixSyncsPerSec: 950}
	if got := row.PerfOverheadPct(); got != 5 {
		t.Errorf("PerfOverheadPct = %v, want 5", got)
	}
	if got := (Table1Row{}).PerfOverheadPct(); got != 0 {
		t.Errorf("degenerate PerfOverheadPct = %v, want 0", got)
	}
}

func TestMaxHelper(t *testing.T) {
	if max(3, 5) != 5 || max(5, 3) != 5 || max(2, 2) != 2 {
		t.Error("max helper wrong")
	}
}

func TestReplayStopIsPrompt(t *testing.T) {
	z := vm.NewZygote(vm.WithDimmunix(true))
	r, err := StartReplay(z, smallProfile(), DefaultReplayConfig())
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	r.Stop(50 * time.Millisecond)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("Stop took %v", elapsed)
	}
}
