// Package apps replays the synchronization behaviour of the 8 Android
// applications profiled in the paper's Table 1. Each profile carries the
// measured thread count, the peak synchronization throughput, and the
// vanilla memory footprint; the replay engine spins up a process with that
// many threads issuing synchronized operations (through internal/vm
// monitors, hence through Dimmunix) at the profiled aggregate rate, over a
// pool of lock objects and realistic framework/app call-site positions.
package apps

import (
	"fmt"

	"github.com/dimmunix/dimmunix/internal/core"
)

// Profile describes one application's measured synchronization behaviour.
type Profile struct {
	// Name is the application name as in Table 1.
	Name string
	// Package is the Android package the replay process is named after.
	Package string
	// Threads is the number of threads observed (Table 1).
	Threads int
	// SyncsPerSec is the peak 30s-window synchronization throughput
	// observed with Dimmunix disabled (Table 1).
	SyncsPerSec float64
	// VanillaMB is the measured memory footprint without Dimmunix
	// (Table 1's "Vanilla" column).
	VanillaMB float64
	// DimmunixMB is the paper's measured footprint with Dimmunix
	// (Table 1's "Dimmunix" column) — kept for comparison in reports.
	DimmunixMB float64
	// Locks is the size of the replay's lock-object pool. Sized so that
	// lock objects approximate the app's population of synchronized
	// objects (which drives the monitor-fattening memory overhead).
	Locks int
	// Sites is the number of distinct synchronization call sites the
	// replay cycles through (drives the position-table size).
	Sites int
	// Classes are the app's representative classes; replay positions are
	// drawn from them.
	Classes []string
}

// Table1 returns the 8 profiled applications with the paper's measured
// numbers (threads, peak syncs/sec, vanilla and Dimmunix memory in MB).
// Lock-pool and site counts are calibration inputs chosen so the replay's
// Dimmunix memory overhead lands in the paper's per-app band (see
// EXPERIMENTS.md).
func Table1() []Profile {
	return []Profile{
		{
			Name: "Email", Package: "com.android.email",
			Threads: 46, SyncsPerSec: 1952, VanillaMB: 15.0, DimmunixMB: 15.8,
			Locks: 4300, Sites: 120,
			Classes: []string{"com.android.email.Controller", "com.android.email.mail.store.ImapStore", "com.android.email.provider.EmailProvider"},
		},
		{
			Name: "Browser", Package: "com.android.browser",
			Threads: 61, SyncsPerSec: 1411, VanillaMB: 37.9, DimmunixMB: 38.9,
			Locks: 5400, Sites: 150,
			Classes: []string{"com.android.browser.BrowserActivity", "com.android.browser.TabControl", "android.webkit.WebViewCore"},
		},
		{
			Name: "Maps", Package: "com.google.android.apps.maps",
			Threads: 119, SyncsPerSec: 1143, VanillaMB: 22.9, DimmunixMB: 23.7,
			Locks: 4300, Sites: 140,
			Classes: []string{"com.google.android.maps.MapView", "com.google.android.maps.TileCache", "com.google.android.maps.NetworkRequestDispatcher"},
		},
		{
			Name: "Market", Package: "com.android.vending",
			Threads: 78, SyncsPerSec: 891, VanillaMB: 17.3, DimmunixMB: 17.9,
			Locks: 3100, Sites: 100,
			Classes: []string{"com.android.vending.AssetStore", "com.android.vending.util.WorkService", "com.android.vending.api.RadioHttpClient"},
		},
		{
			Name: "Calendar", Package: "com.android.calendar",
			Threads: 26, SyncsPerSec: 815, VanillaMB: 14.0, DimmunixMB: 14.4,
			Locks: 2000, Sites: 80,
			Classes: []string{"com.android.calendar.SyncAdapter", "com.android.calendar.CalendarView", "com.android.providers.calendar.CalendarProvider"},
		},
		{
			Name: "Talk", Package: "com.google.android.talk",
			Threads: 33, SyncsPerSec: 527, VanillaMB: 10.7, DimmunixMB: 11.2,
			Locks: 2750, Sites: 90,
			Classes: []string{"com.google.android.gtalkservice.GTalkConnection", "com.google.android.gtalkservice.ConnectionLock", "com.google.android.talk.ChatView"},
		},
		{
			Name: "Angry Birds", Package: "com.rovio.angrybirds",
			Threads: 23, SyncsPerSec: 325, VanillaMB: 29.3, DimmunixMB: 29.7,
			Locks: 2000, Sites: 40,
			Classes: []string{"com.rovio.angrybirds.GameEngine", "com.rovio.angrybirds.SoundPool", "com.rovio.angrybirds.SpriteCache"},
		},
		{
			Name: "Camera", Package: "com.android.camera",
			Threads: 26, SyncsPerSec: 309, VanillaMB: 11.4, DimmunixMB: 11.8,
			Locks: 2000, Sites: 60,
			Classes: []string{"com.android.camera.Camera", "com.android.camera.ImageManager", "android.hardware.Camera"},
		},
	}
}

// ProfileByName finds a Table 1 profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Table1() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("apps: unknown profile %q", name)
}

// SiteFrames deterministically generates the profile's call-site frames —
// the positions a replay (or the fleet stress workload) synchronizes at.
func (p Profile) SiteFrames() []core.Frame {
	return p.sitePositions()
}

// sitePositions deterministically generates the profile's call-site
// frames, cycling through its classes with distinct methods/lines.
func (p Profile) sitePositions() []core.Frame {
	methods := []string{"run", "handleMessage", "onReceive", "doInBackground", "loadData", "sync", "update", "dispatch"}
	frames := make([]core.Frame, 0, p.Sites)
	for i := 0; i < p.Sites; i++ {
		frames = append(frames, core.Frame{
			Class:  p.Classes[i%len(p.Classes)],
			Method: methods[(i/len(p.Classes))%len(methods)],
			Line:   100 + i*13,
		})
	}
	return frames
}
