package apps

import (
	"fmt"
	"strings"
	"time"

	"github.com/dimmunix/dimmunix/internal/metrics"
)

// Table-1 regeneration harness (experiments E2, E4, E5): replays each
// application once vanilla and once under Dimmunix, measures throughput,
// Dimmunix memory, and busy CPU time, and assembles the paper's table plus
// the platform-level memory and power summaries.

// Nexus One parameters.
const (
	// DeviceRAMMB is the Nexus One's RAM.
	DeviceRAMMB = 512
	// vanillaPlatformPct is the paper's measured vanilla memory
	// utilization ("50% for the vanilla Android OS"); the OS base
	// footprint is derived from it and the app sum.
	vanillaPlatformPct = 50.0
	// nexusBusyFraction is the CPU duty cycle during the paper's
	// "intensive usage" interval implied by the 14% apps+OS battery
	// attribution under the component power model. Host CPU time is
	// normalized to the 1 GHz Nexus One through it (see EXPERIMENTS.md).
	nexusBusyFraction = 0.37
)

// Table1Row is one application's measured row.
type Table1Row struct {
	// App is the application name.
	App string
	// Threads is the replayed thread count.
	Threads int
	// VanillaSyncsPerSec is the peak-window throughput without Dimmunix
	// (the paper's Syncs/sec column).
	VanillaSyncsPerSec float64
	// DimmunixSyncsPerSec is the same measurement with Dimmunix.
	DimmunixSyncsPerSec float64
	// Memory combines the modeled vanilla footprint with the measured
	// Dimmunix bytes.
	Memory metrics.AppMemory
	// PaperDimmunixMB and PaperVanillaMB echo Table 1 for comparison.
	PaperDimmunixMB float64
	PaperVanillaMB  float64
	// VanillaBusy/DimmunixBusy are the accumulated busy CPU times.
	VanillaBusy  time.Duration
	DimmunixBusy time.Duration
}

// PerfOverheadPct is the app's throughput overhead percentage.
func (r Table1Row) PerfOverheadPct() float64 {
	if r.VanillaSyncsPerSec <= 0 {
		return 0
	}
	return (r.VanillaSyncsPerSec - r.DimmunixSyncsPerSec) / r.VanillaSyncsPerSec * 100
}

// Table1Report is the full E2/E4/E5 result set.
type Table1Report struct {
	Rows     []Table1Row
	Platform metrics.PlatformMemory
	// PowerVanilla/PowerDimmunix are the battery attributions for the two
	// builds over the same usage interval.
	PowerVanilla  metrics.PowerReport
	PowerDimmunix metrics.PowerReport
}

// RunTable1 replays the given profiles (defaults to all of Table 1 when
// nil), each for `duration` per configuration, selecting peak throughput
// over `peakWidth` windows (the scaled stand-in for the paper's 30 s).
func RunTable1(profiles []Profile, duration, peakWidth time.Duration, cfg ReplayConfig) (Table1Report, error) {
	if profiles == nil {
		profiles = Table1()
	}
	report := Table1Report{}
	appSumVanillaMB := 0.0
	var busyVan, busyDim, wall time.Duration

	for _, p := range profiles {
		van, err := RunProfile(p, false, duration, peakWidth, cfg)
		if err != nil {
			return Table1Report{}, fmt.Errorf("table1 %s vanilla: %w", p.Name, err)
		}
		dim, err := RunProfile(p, true, duration, peakWidth, cfg)
		if err != nil {
			return Table1Report{}, fmt.Errorf("table1 %s dimmunix: %w", p.Name, err)
		}
		vmDelta := dim.VMSyncBytes - van.VMSyncBytes
		if vmDelta < 0 {
			vmDelta = 0
		}
		row := Table1Row{
			App:                 p.Name,
			Threads:             p.Threads,
			VanillaSyncsPerSec:  van.PeakSyncsPerSec,
			DimmunixSyncsPerSec: dim.PeakSyncsPerSec,
			Memory: metrics.AppMemory{
				Name:      p.Name,
				VanillaMB: p.VanillaMB,
				CoreBytes: dim.CoreBytes,
				VMBytes:   vmDelta,
			},
			PaperVanillaMB:  p.VanillaMB,
			PaperDimmunixMB: p.DimmunixMB,
			VanillaBusy:     van.BusyTime,
			DimmunixBusy:    dim.BusyTime,
		}
		report.Rows = append(report.Rows, row)
		report.Platform.Apps = append(report.Platform.Apps, row.Memory)
		appSumVanillaMB += p.VanillaMB
		busyVan += van.BusyTime
		busyDim += dim.BusyTime
		wall += duration
	}

	report.Platform.DeviceMB = DeviceRAMMB
	report.Platform.BaseOSMB = vanillaPlatformPct/100*DeviceRAMMB - appSumVanillaMB

	report.PowerVanilla, report.PowerDimmunix = PowerComparison(busyVan, busyDim, wall, metrics.DefaultPowerModel())
	return report, nil
}

// PowerComparison normalizes host CPU time to the reference device (the
// replay runs on a machine far faster than a 1 GHz Nexus One) and
// attributes battery consumption for both builds. The normalization factor
// is anchored on the vanilla run; the Dimmunix run inherits it, so the
// comparison isolates exactly the measured CPU overhead.
func PowerComparison(vanBusy, dimBusy, wall time.Duration, model metrics.PowerModel) (van, dim metrics.PowerReport) {
	if wall <= 0 || vanBusy <= 0 {
		return metrics.PowerReport{}, metrics.PowerReport{}
	}
	scale := nexusBusyFraction * float64(wall) / float64(vanBusy)
	vanScaled := time.Duration(float64(vanBusy) * scale)
	dimScaled := time.Duration(float64(dimBusy) * scale)
	return model.Attribute(wall, vanScaled), model.Attribute(wall, dimScaled)
}

// Format renders the report in the paper's layout.
func (r Table1Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %14s %14s %14s %14s %8s\n",
		"Application", "Threads", "Syncs/sec", "Syncs/sec", "Memory", "Memory", "MemOvh")
	fmt.Fprintf(&b, "%-12s %8s %14s %14s %14s %14s %8s\n",
		"", "", "(vanilla)", "(dimmunix)", "(dimmunix)", "(vanilla)", "")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %8d %14s %14s %14s %14s %7.1f%%\n",
			row.App, row.Threads,
			metrics.FormatRate(row.VanillaSyncsPerSec),
			metrics.FormatRate(row.DimmunixSyncsPerSec),
			metrics.FormatMB(row.Memory.DimmunixMB()),
			metrics.FormatMB(row.Memory.VanillaMB),
			row.Memory.OverheadPct(),
		)
	}
	fmt.Fprintf(&b, "\nplatform memory: dimmunix %.0f%%, vanilla %.0f%% of %d MB (overall app overhead %.1f%%)\n",
		r.Platform.DimmunixPct(), r.Platform.VanillaPct(), int(r.Platform.DeviceMB), r.Platform.OverallOverheadPct())
	fmt.Fprintf(&b, "power attribution (apps+os): vanilla %.0f%%, dimmunix %.0f%%\n",
		r.PowerVanilla.AppsAndOSPct, r.PowerDimmunix.AppsAndOSPct)
	return b.String()
}
