package core

import (
	"errors"
	"path/filepath"
	"testing"
	"time"
)

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name string
		opts []Option
		ok   bool
	}{
		{"defaults", nil, true},
		{"depth 0", []Option{WithOuterDepth(0)}, false},
		{"bad policy", []Option{WithPolicy(DeadlockPolicy(0))}, false},
		{"bad starvation", []Option{WithStarvation(StarvationMode(0))}, false},
		{"timeout without watchdog", []Option{WithStarvation(StarvationTimeout), WithYieldTimeout(time.Millisecond)}, false},
		{"timeout with watchdog", []Option{WithStarvation(StarvationTimeout), WithYieldTimeout(time.Millisecond), WithWatchdog(time.Millisecond)}, true},
		{"negative buffer", []Option{WithEventBuffer(-1)}, false},
		{"depth 3", []Option{WithOuterDepth(3)}, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			c, err := New(tc.opts...)
			if (err == nil) != tc.ok {
				t.Errorf("New error = %v, want ok=%v", err, tc.ok)
			}
			if c != nil {
				_ = c.Close()
			}
		})
	}
}

func TestBasicAcquireReleaseFlow(t *testing.T) {
	h := newHarness(t)
	t1 := h.thread("t1")
	l1 := h.lock("l1")
	p := h.pos("C", "m", 1)
	h.arm("C", "m", 1) // exercise the queue-maintaining slow path

	h.acquire(t1, l1, p)
	if l1.owner.Load() != t1 {
		t.Error("lock must record its owner after Acquired")
	}
	if l1.acqPos != p {
		t.Error("lock must record its acquisition position")
	}
	if t1.reqLock != nil || t1.reqEntry != nil {
		t.Error("request edge must clear after Acquired")
	}
	if p.occupants() != 1 {
		t.Errorf("position occupants = %d, want 1", p.occupants())
	}

	h.release(t1, l1)
	if l1.owner.Load() != nil || l1.acqPos != nil {
		t.Error("release must clear ownership")
	}
	if p.occupants() != 0 {
		t.Errorf("position occupants after release = %d, want 0", p.occupants())
	}

	st := h.c.Stats()
	if st.Requests != 1 || st.Acquisitions != 1 || st.Releases != 1 {
		t.Errorf("stats = %+v, want 1/1/1", st)
	}
	if st.Misuse != 0 {
		t.Errorf("misuse = %d, want 0", st.Misuse)
	}
}

func TestRequestArgValidation(t *testing.T) {
	h := newHarness(t)
	t1 := h.thread("t1")
	l1 := h.lock("l1")
	p := h.pos("C", "m", 1)
	if err := h.c.Request(nil, l1, p); err == nil {
		t.Error("nil thread must be rejected")
	}
	if err := h.c.Request(t1, nil, p); err == nil {
		t.Error("nil lock must be rejected")
	}
	if err := h.c.Request(t1, l1, nil); err == nil {
		t.Error("nil position must be rejected")
	}
	if err := h.c.Request(l1, t1, p); err == nil {
		t.Error("swapped node kinds must be rejected")
	}
}

func TestMisuseCounters(t *testing.T) {
	h := newHarness(t)
	t1 := h.thread("t1")
	l1 := h.lock("l1")

	// Release without acquire.
	h.c.Release(t1, l1)
	if st := h.c.Stats(); st.Misuse == 0 {
		t.Error("release of unheld lock must count as misuse")
	}

	// Acquired without Request.
	h.c.Acquired(t1, l1)
	if l1.owner.Load() != t1 {
		t.Error("Acquired must still record ownership for robustness")
	}
	h.c.Release(t1, l1)
}

func TestAbortUndoesApproval(t *testing.T) {
	h := newHarness(t)
	t1 := h.thread("t1")
	l1 := h.lock("l1")
	p := h.pos("C", "m", 1)
	h.arm("C", "m", 1)

	if err := h.c.Request(t1, l1, p); err != nil {
		t.Fatal(err)
	}
	if p.occupants() != 1 {
		t.Fatal("approved request must occupy the position queue")
	}
	h.c.Abort(t1, l1)
	if p.occupants() != 0 {
		t.Error("abort must remove the queue entry")
	}
	if t1.reqLock != nil {
		t.Error("abort must clear the request edge")
	}
	if st := h.c.Stats(); st.Aborts != 1 {
		t.Errorf("aborts = %d, want 1", st.Aborts)
	}
}

func TestCloseWakesYielders(t *testing.T) {
	h := newHarness(t)
	mustAdd(t, h.c, sigOf(DeadlockSig, fr("test.C", "m", 1), fr("test.C", "m", 2)))

	t1, t2 := h.thread("t1"), h.thread("t2")
	lA, lB := h.lock("A"), h.lock("B")
	p1, p2 := h.pos("C", "m", 1), h.pos("C", "m", 2)

	h.acquire(t1, lA, p1)

	errCh := make(chan error, 1)
	go func() {
		errCh <- h.c.Request(t2, lB, p2) // must yield: instantiation possible
	}()
	waitUntil(t, "yield", func() bool { return h.c.Stats().Yields == 1 })

	if err := h.c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrCoreClosed) {
			t.Errorf("yielder got %v, want ErrCoreClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("yielder not woken by Close")
	}
	// Close is idempotent.
	if err := h.c.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	// Operations after close fail cleanly.
	if err := h.c.Request(t1, lB, p2); !errors.Is(err, ErrCoreClosed) {
		t.Errorf("Request after close = %v, want ErrCoreClosed", err)
	}
}

func TestHistoryLoadAtInit(t *testing.T) {
	store := NewMemHistory()
	if err := store.Append(sigOf(DeadlockSig, fr("test.C", "m", 1), fr("test.C", "m", 2))); err != nil {
		t.Fatal(err)
	}
	h := newHarness(t, WithStore(store))
	if h.c.HistorySize() != 1 {
		t.Fatalf("history size = %d, want 1", h.c.HistorySize())
	}
	if st := h.c.Stats(); st.SignaturesLoaded != 1 {
		t.Errorf("SignaturesLoaded = %d, want 1", st.SignaturesLoaded)
	}
	// Positions referenced by the loaded signature must be armed.
	p := h.pos("C", "m", 1)
	if !p.InHistory() {
		t.Error("loaded signature must mark its positions inHistory")
	}
}

func TestAddSignatureDeduplicates(t *testing.T) {
	h := newHarness(t)
	sig := sigOf(DeadlockSig, fr("a.B", "m", 1), fr("c.D", "n", 2))
	_, fresh, err := h.c.AddSignature(sig)
	if err != nil || !fresh {
		t.Fatalf("first add: fresh=%v err=%v", fresh, err)
	}
	// Same bug, pairs permuted: must deduplicate.
	perm := sigOf(DeadlockSig, fr("c.D", "n", 2), fr("a.B", "m", 1))
	_, fresh, err = h.c.AddSignature(perm)
	if err != nil {
		t.Fatal(err)
	}
	if fresh {
		t.Error("permuted duplicate must not install a second signature")
	}
	if h.c.HistorySize() != 1 {
		t.Errorf("history size = %d, want 1", h.c.HistorySize())
	}
}

func TestAddSignaturePersists(t *testing.T) {
	path := filepath.Join(t.TempDir(), "h.hist")
	store := NewFileHistory(path)
	h := newHarness(t, WithStore(store))
	mustAdd(t, h.c, sigOf(DeadlockSig, fr("a.B", "m", 1), fr("c.D", "n", 2)))
	sigs, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(sigs) != 1 {
		t.Errorf("store has %d sigs, want 1", len(sigs))
	}
}

func TestMemStatsAccounting(t *testing.T) {
	h := newHarness(t)
	t1 := h.thread("t1")
	l1 := h.lock("l1")
	p := h.pos("C", "m", 1)
	h.arm("C", "m", 1)
	h.acquire(t1, l1, p)

	ms := h.c.MemStats()
	if ms.Positions != 1 {
		t.Errorf("Positions = %d, want 1", ms.Positions)
	}
	if ms.Nodes != 2 {
		t.Errorf("Nodes = %d, want 2", ms.Nodes)
	}
	if ms.QueueEntriesLive != 1 {
		t.Errorf("QueueEntriesLive = %d, want 1", ms.QueueEntriesLive)
	}
	if ms.Bytes <= 0 {
		t.Error("footprint estimate must be positive")
	}

	h.release(t1, l1)
	ms = h.c.MemStats()
	if ms.QueueEntriesLive != 0 || ms.QueueEntriesFree != 1 {
		t.Errorf("after release: live=%d free=%d, want 0/1", ms.QueueEntriesLive, ms.QueueEntriesFree)
	}
}

func TestQueueReuseBoundsAllocations(t *testing.T) {
	h := newHarness(t)
	t1 := h.thread("t1")
	l1 := h.lock("l1")
	p := h.pos("C", "m", 1)
	h.arm("C", "m", 1)
	for i := 0; i < 100; i++ {
		h.acquire(t1, l1, p)
		h.release(t1, l1)
	}
	ms := h.c.MemStats()
	if ms.QueueEntriesAllocated != 1 {
		t.Errorf("allocated %d entries across 100 acquisitions, want 1 (reuse)", ms.QueueEntriesAllocated)
	}

	h2 := newHarness(t, WithQueueReuse(false))
	u1 := h2.thread("u1")
	m1 := h2.lock("m1")
	q := h2.pos("C", "m", 1)
	h2.arm("C", "m", 1)
	for i := 0; i < 100; i++ {
		h2.acquire(u1, m1, q)
		h2.release(u1, m1)
	}
	if ms := h2.c.MemStats(); ms.QueueEntriesAllocated != 100 {
		t.Errorf("reuse off: allocated %d, want 100", ms.QueueEntriesAllocated)
	}
}

func TestEventChannelDropsWhenFull(t *testing.T) {
	// Buffer of 1 and no consumer: second event must drop, not block.
	c, err := New(WithEventBuffer(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	mustAdd(t, c, sigOf(DeadlockSig, fr("a.B", "m", 1), fr("c.D", "n", 2)))

	c.emit(Event{Kind: EventYield})
	c.emit(Event{Kind: EventYield}) // would block without drop logic
	if dropped := c.Stats().EventsDropped; dropped != 1 {
		t.Errorf("EventsDropped = %d, want 1", dropped)
	}
}
