package core

import (
	"path/filepath"
	"testing"
)

func TestMergeHistoriesDeduplicates(t *testing.T) {
	a := sigOf(DeadlockSig, fr("a.B", "m", 1), fr("c.D", "n", 2))
	aPerm := sigOf(DeadlockSig, fr("c.D", "n", 2), fr("a.B", "m", 1)) // same bug
	b := sigOf(DeadlockSig, fr("e.F", "o", 3), fr("g.H", "p", 4))
	s := sigOf(StarvationSig, fr("a.B", "m", 1))

	merged, err := MergeHistories([]*Signature{a, b}, []*Signature{aPerm, s})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 3 {
		t.Fatalf("merged %d signatures, want 3 (a, b, starvation)", len(merged))
	}
	// Deep copies: mutating the result must not touch the inputs.
	merged[0].Pairs[0].Outer[0].Line = 999
	if a.Pairs[0].Outer[0].Line == 999 && aPerm.Pairs[0].Outer[0].Line == 999 {
		t.Error("merge must deep-copy signatures")
	}
}

func TestMergeHistoriesRejectsInvalid(t *testing.T) {
	if _, err := MergeHistories([]*Signature{nil}); err == nil {
		t.Error("nil signature must fail")
	}
	if _, err := MergeHistories([]*Signature{{Kind: DeadlockSig}}); err == nil {
		t.Error("invalid signature must fail")
	}
}

func TestMergeStores(t *testing.T) {
	dir := t.TempDir()
	device := NewFileHistory(filepath.Join(dir, "device.hist"))
	vendor1 := NewFileHistory(filepath.Join(dir, "vendor1.hist"))
	vendor2 := NewFileHistory(filepath.Join(dir, "vendor2.hist"))

	deviceSig := sigOf(DeadlockSig, fr("local.A", "m", 1), fr("local.B", "n", 2))
	sharedSig := sigOf(DeadlockSig, fr("ven.C", "o", 3), fr("ven.D", "p", 4))
	uniqueSig := sigOf(DeadlockSig, fr("ven.E", "q", 5), fr("ven.F", "r", 6))

	if err := device.Append(deviceSig); err != nil {
		t.Fatal(err)
	}
	if err := vendor1.Append(sharedSig); err != nil {
		t.Fatal(err)
	}
	if err := vendor2.Append(sharedSig); err != nil { // duplicate across vendors
		t.Fatal(err)
	}
	if err := vendor2.Append(uniqueSig); err != nil {
		t.Fatal(err)
	}

	added, err := MergeStores(device, vendor1, vendor2)
	if err != nil {
		t.Fatal(err)
	}
	if added != 2 {
		t.Errorf("added %d signatures, want 2 (shared once + unique)", added)
	}
	final, err := device.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(final) != 3 {
		t.Errorf("device history has %d signatures, want 3", len(final))
	}

	// Merging again is a no-op.
	added, err = MergeStores(device, vendor1, vendor2)
	if err != nil {
		t.Fatal(err)
	}
	if added != 0 {
		t.Errorf("re-merge added %d, want 0", added)
	}
}

func TestMergeStoresDetailed(t *testing.T) {
	device := NewMemHistory()
	vendor1 := NewMemHistory()
	vendor2 := NewMemHistory()

	deviceSig := sigOf(DeadlockSig, fr("local.A", "m", 1), fr("local.B", "n", 2))
	sharedSig := sigOf(DeadlockSig, fr("ven.C", "o", 3), fr("ven.D", "p", 4))
	uniqueSig := sigOf(DeadlockSig, fr("ven.E", "q", 5), fr("ven.F", "r", 6))

	for _, step := range []struct {
		store HistoryStore
		sig   *Signature
	}{
		{device, deviceSig},
		{vendor1, sharedSig},
		{vendor2, sharedSig}, // duplicate across vendors
		{vendor2, uniqueSig},
		{vendor2, deviceSig}, // duplicate of the destination
	} {
		if err := step.store.Append(step.sig); err != nil {
			t.Fatal(err)
		}
	}

	detail, err := MergeStoresDetailed(device, vendor1, vendor2)
	if err != nil {
		t.Fatal(err)
	}
	if detail.Added != 2 {
		t.Errorf("added %d, want 2", detail.Added)
	}
	want := []MergeSourceStat{
		{Loaded: 1, Added: 1, Duplicates: 0},
		{Loaded: 3, Added: 1, Duplicates: 2},
	}
	for i, w := range want {
		if detail.PerSource[i] != w {
			t.Errorf("source %d: got %+v, want %+v", i, detail.PerSource[i], w)
		}
	}
	if got := detail.Origin[sharedSig.Key()]; got != 0 {
		t.Errorf("shared signature attributed to source %d, want 0", got)
	}
	if got := detail.Origin[uniqueSig.Key()]; got != 1 {
		t.Errorf("unique signature attributed to source %d, want 1", got)
	}
	if len(detail.AddedKeys) != 2 {
		t.Errorf("AddedKeys has %d entries, want 2", len(detail.AddedKeys))
	}
}

// TestMergedHistoryImmunizesForeignBug: a core loading a merged history is
// immune to a deadlock its own device never saw — the vendor-antibody
// scenario.
func TestMergedHistoryImmunizesForeignBug(t *testing.T) {
	vendor := NewMemHistory()
	if err := vendor.Append(sigOf(DeadlockSig, fr("test.Svc1", "outer", 10), fr("test.Svc2", "outer", 20))); err != nil {
		t.Fatal(err)
	}
	device := NewMemHistory()
	if _, err := MergeStores(device, vendor); err != nil {
		t.Fatal(err)
	}

	h := newHarness(t, WithStore(device))
	t1, t2 := h.thread("t1"), h.thread("t2")
	lA, lB := h.lock("A"), h.lock("B")
	p1, p2 := h.pos("Svc1", "outer", 10), h.pos("Svc2", "outer", 20)

	h.acquire(t1, lA, p1)
	done := make(chan error, 1)
	go func() { done <- h.c.Request(t2, lB, p2) }()
	waitUntil(t, "avoidance of vendor-shipped signature", func() bool {
		return h.c.Stats().Yields == 1
	})
	h.release(t1, lA)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
