package core

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestFrameString(t *testing.T) {
	f := Frame{Class: "com.android.server.NotificationManagerService", Method: "enqueueNotificationWithTag", Line: 142}
	want := "com.android.server.NotificationManagerService.enqueueNotificationWithTag:142"
	if got := f.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestParseFrameRoundTrip(t *testing.T) {
	tests := []Frame{
		{Class: "a", Method: "b", Line: 0},
		{Class: "com.example.Outer$Inner", Method: "run", Line: 99},
		{Class: "x.y.z", Method: "<init>", Line: 12345},
	}
	for _, f := range tests {
		got, err := ParseFrame(f.String())
		if err != nil {
			t.Errorf("ParseFrame(%q): %v", f.String(), err)
			continue
		}
		if got != f {
			t.Errorf("round trip: got %+v, want %+v", got, f)
		}
	}
}

func TestParseFrameErrors(t *testing.T) {
	bad := []string{
		"",
		"noline",
		"Class.method",     // missing :line
		"Class.method:abc", // non-numeric line
		":5",               // no class.method
		"justclass:5",      // no method separator
		".method:5",        // empty class
		"Class.:5",         // empty method
		"Cl ass.method:5",  // space in class
		"Class.me;thod:5",  // reserved char
		"Class.method:-3",  // negative line survives Atoi, caught by Validate
	}
	for _, s := range bad {
		if _, err := ParseFrame(s); err == nil {
			t.Errorf("ParseFrame(%q): expected error, got nil", s)
		}
	}
}

func TestFrameValidate(t *testing.T) {
	tests := []struct {
		name  string
		frame Frame
		ok    bool
	}{
		{"valid", fr("a.B", "m", 1), true},
		{"zero line", fr("a.B", "m", 0), true},
		{"empty class", Frame{Method: "m", Line: 1}, false},
		{"empty method", Frame{Class: "C", Line: 1}, false},
		{"negative line", fr("C", "m", -1), false},
		{"pipe in class", fr("C|D", "m", 1), false},
		{"equals in method", fr("C", "m=n", 1), false},
		{"semicolon in class", fr("C;D", "m", 1), false},
		{"tab in method", fr("C", "m\tn", 1), false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.frame.Validate()
			if (err == nil) != tc.ok {
				t.Errorf("Validate() error = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestCallStackKeyRoundTrip(t *testing.T) {
	cs := stackOf(fr("a.B", "m", 1), fr("c.D", "n", 2), fr("e.F", "o", 3))
	key := cs.Key()
	if want := "a.B.m:1;c.D.n:2;e.F.o:3"; key != want {
		t.Fatalf("Key() = %q, want %q", key, want)
	}
	got, err := ParseCallStack(key)
	if err != nil {
		t.Fatalf("ParseCallStack: %v", err)
	}
	if !got.Equal(cs) {
		t.Errorf("round trip: got %v, want %v", got, cs)
	}
}

func TestCallStackTruncate(t *testing.T) {
	cs := stackOf(fr("a.B", "m", 1), fr("c.D", "n", 2), fr("e.F", "o", 3))
	tests := []struct {
		depth int
		want  int
	}{
		{-1, 1}, {0, 1}, {1, 1}, {2, 2}, {3, 3}, {4, 3},
	}
	for _, tc := range tests {
		if got := len(cs.Truncate(tc.depth)); got != tc.want {
			t.Errorf("Truncate(%d) length = %d, want %d", tc.depth, got, tc.want)
		}
	}
	if cs.Truncate(1).Top() != cs.Top() {
		t.Error("Truncate must keep the innermost frame")
	}
}

func TestCallStackCloneIndependence(t *testing.T) {
	cs := stackOf(fr("a.B", "m", 1), fr("c.D", "n", 2))
	cl := cs.Clone()
	cl[0].Line = 999
	if cs[0].Line == 999 {
		t.Error("Clone aliases the original")
	}
	if CallStack(nil).Clone() != nil {
		t.Error("Clone(nil) should be nil")
	}
}

func TestCallStackEqual(t *testing.T) {
	a := stackOf(fr("a.B", "m", 1), fr("c.D", "n", 2))
	b := stackOf(fr("a.B", "m", 1), fr("c.D", "n", 2))
	c := stackOf(fr("a.B", "m", 1))
	d := stackOf(fr("a.B", "m", 1), fr("c.D", "n", 3))
	if !a.Equal(b) {
		t.Error("identical stacks must be equal")
	}
	if a.Equal(c) || a.Equal(d) {
		t.Error("different stacks must not be equal")
	}
}

func TestCallStackValidate(t *testing.T) {
	if err := (CallStack{}).Validate(); err == nil {
		t.Error("empty stack must not validate")
	}
	if err := stackOf(fr("C", "m", 1), Frame{}).Validate(); err == nil {
		t.Error("stack with invalid frame must not validate")
	}
	if err := stackOf(fr("C", "m", 1)).Validate(); err != nil {
		t.Errorf("valid stack: %v", err)
	}
}

// genFrame produces a random valid frame for property tests.
func genFrame(r *rand.Rand) Frame {
	const letters = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_$."
	word := func(minLen int) string {
		n := minLen + r.Intn(8)
		var b strings.Builder
		for i := 0; i < n; i++ {
			ch := letters[r.Intn(len(letters))]
			// A class segment must not start or end with '.', and method
			// must not contain '.' at all for unambiguous parsing; keep it
			// simple: no dots inside generated words.
			if ch == '.' {
				ch = '_'
			}
			b.WriteByte(ch)
		}
		return b.String()
	}
	depth := 1 + r.Intn(3)
	parts := make([]string, depth)
	for i := range parts {
		parts[i] = word(1)
	}
	return Frame{
		Class:  strings.Join(parts, "."),
		Method: word(1),
		Line:   r.Intn(100000),
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		frame := genFrame(r)
		parsed, err := ParseFrame(frame.String())
		return err == nil && parsed == frame
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCallStackRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		depth := 1 + r.Intn(6)
		cs := make(CallStack, depth)
		for i := range cs {
			cs[i] = genFrame(r)
		}
		parsed, err := ParseCallStack(cs.Key())
		if err != nil {
			return false
		}
		return reflect.DeepEqual(parsed, cs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
