package core

import (
	"fmt"
	"sync"
	"testing"
)

// TestAvoidanceBlocksInstantiation is the core immunity property: with the
// ABBA signature in history, the second thread to engage the pattern is
// suspended until the first releases, so the deadlock cannot reoccur.
func TestAvoidanceBlocksInstantiation(t *testing.T) {
	store := NewMemHistory()
	if err := store.Append(sigOf(DeadlockSig, fr("test.Svc1.outer", "m", 10), fr("test.Svc2.outer", "m", 20))); err != nil {
		t.Fatal(err)
	}
	h := newHarness(t, WithStore(store))
	t1, t2 := h.thread("t1"), h.thread("t2")
	lA, lB := h.lock("A"), h.lock("B")
	p1 := h.pos("Svc1.outer", "m", 10)
	p2 := h.pos("Svc2.outer", "m", 20)

	h.acquire(t1, lA, p1) // t1 occupies position 1 of the signature

	done := make(chan error, 1)
	go func() {
		// t2 at position 2 would complete the instantiation: must yield.
		done <- h.c.Request(t2, lB, p2)
	}()
	waitUntil(t, "t2 yield", func() bool { return h.c.Stats().Yields == 1 })
	select {
	case err := <-done:
		t.Fatalf("t2 proceeded while instantiation possible (err=%v)", err)
	default:
	}

	// t1 releases its lock: the instantiation dissolves and t2 resumes.
	h.release(t1, lA)
	if err := <-done; err != nil {
		t.Fatalf("t2 resume: %v", err)
	}
	h.c.Acquired(t2, lB)

	st := h.c.Stats()
	if st.Resumes != 1 {
		t.Errorf("Resumes = %d, want 1", st.Resumes)
	}
	if st.DeadlocksDetected != 0 {
		t.Errorf("DeadlocksDetected = %d, want 0 (avoided)", st.DeadlocksDetected)
	}
}

// TestEndToEndImmunity plays both runs of the paper's scenario against raw
// core instances sharing one store: run 1 detects the deadlock and saves
// the signature; run 2 (fresh core = rebooted process) avoids it.
func TestEndToEndImmunity(t *testing.T) {
	store := NewMemHistory()

	// Run 1: detection.
	run1 := newHarness(t, WithStore(store), WithAvoidance(true))
	t2, lockA, p2in := buildABBA(run1)
	if err := run1.c.Request(t2, lockA, p2in); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 1 {
		t.Fatalf("run 1 persisted %d signatures, want 1", store.Len())
	}

	// Run 2: a fresh core loads the history; the same interleaving now
	// suspends the second thread instead of deadlocking.
	run2 := newHarness(t, WithStore(store))
	u1, u2 := run2.thread("t1"), run2.thread("t2")
	mA, mB := run2.lock("A"), run2.lock("B")
	q1 := run2.pos("Svc1", "outer", 10)
	q2 := run2.pos("Svc2", "outer", 20)
	q1in := run2.pos("Svc1", "inner", 11)

	run2.acquire(u1, mA, q1)
	yielded := make(chan error, 1)
	go func() { yielded <- run2.c.Request(u2, mB, q2) }()
	waitUntil(t, "run2 yield", func() bool { return run2.c.Stats().Yields == 1 })

	// u1 proceeds through its inner acquisition unimpeded (u2 never got B),
	// completes, and releases everything.
	if err := run2.c.Request(u1, mB, q1in); err != nil {
		t.Fatal(err)
	}
	run2.c.Acquired(u1, mB)
	run2.c.Release(u1, mB)
	run2.release(u1, mA)

	if err := <-yielded; err != nil {
		t.Fatalf("u2: %v", err)
	}
	run2.c.Acquired(u2, mB)
	if st := run2.c.Stats(); st.DeadlocksDetected != 0 || st.DuplicateDeadlocks != 0 {
		t.Errorf("run 2 must not deadlock: %+v", st)
	}
}

func TestAvoidanceDistinctThreadsRequired(t *testing.T) {
	// Signature over {p1, p2}. One thread holding locks at BOTH positions
	// must not count as an instantiation (a thread cannot deadlock with
	// itself), so a second thread arriving at p1 while t1 occupies p1+p2
	// yields only if t1 and it can fill both slots — here they can, so it
	// yields; but t1 alone must not have been blocked.
	h := newHarness(t)
	mustAdd(t, h.c, sigOf(DeadlockSig, fr("test.W", "p1", 1), fr("test.W", "p2", 2)))
	t1 := h.thread("t1")
	lA, lB := h.lock("A"), h.lock("B")
	p1, p2 := h.pos("W", "p1", 1), h.pos("W", "p2", 2)

	h.acquire(t1, lA, p1)
	// t1 proceeding to p2 must NOT yield: the only candidate for slot p1
	// is t1 itself, which would have to fill both slots.
	if err := h.c.Request(t1, lB, p2); err != nil {
		t.Fatal(err)
	}
	h.c.Acquired(t1, lB)
	if st := h.c.Stats(); st.Yields != 0 {
		t.Errorf("single thread filled both slots: yields = %d, want 0", st.Yields)
	}
}

func TestAvoidanceSkipsUnrelatedPositions(t *testing.T) {
	h := newHarness(t)
	mustAdd(t, h.c, sigOf(DeadlockSig, fr("test.W", "p1", 1), fr("test.W", "p2", 2)))
	t1, t2 := h.thread("t1"), h.thread("t2")
	lA, lB := h.lock("A"), h.lock("B")
	p1 := h.pos("W", "p1", 1)
	other := h.pos("Other", "m", 9)

	h.acquire(t1, lA, p1)
	before := h.c.Stats().AvoidanceChecks
	// t2 acquires at a position not in any signature: no avoidance work.
	h.acquire(t2, lB, other)
	if got := h.c.Stats().AvoidanceChecks; got != before {
		t.Errorf("AvoidanceChecks grew by %d for unrelated position, want 0", got-before)
	}
}

func TestAvoidanceMultipleSignaturesSequential(t *testing.T) {
	// Two signatures share position p1. A thread requesting at p1 must
	// stay suspended while either is instantiable.
	h := newHarness(t)
	mustAdd(t, h.c, sigOf(DeadlockSig, fr("test.W", "p1", 1), fr("test.W", "p2", 2)))
	mustAdd(t, h.c, sigOf(DeadlockSig, fr("test.W", "p1", 1), fr("test.W", "p3", 3)))

	tA, tB, tC := h.thread("tA"), h.thread("tB"), h.thread("tC")
	lA, lB, lC := h.lock("A"), h.lock("B"), h.lock("C")
	p1, p2, p3 := h.pos("W", "p1", 1), h.pos("W", "p2", 2), h.pos("W", "p3", 3)

	h.acquire(tB, lB, p2) // arms sig 1
	h.acquire(tC, lC, p3) // arms sig 2

	done := make(chan error, 1)
	go func() { done <- h.c.Request(tA, lA, p1) }()
	waitUntil(t, "first yield", func() bool { return h.c.Stats().Yields >= 1 })

	h.release(tB, lB) // sig 1 dissolves; sig 2 still instantiable
	waitUntil(t, "second yield", func() bool { return h.c.Stats().Yields >= 2 })
	select {
	case <-done:
		t.Fatal("tA proceeded while second signature instantiable")
	default:
	}

	h.release(tC, lC)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if st := h.c.Stats(); st.InstantiationsFound < 2 {
		t.Errorf("InstantiationsFound = %d, want >= 2", st.InstantiationsFound)
	}
}

func TestAvoidanceDisabled(t *testing.T) {
	h := newHarness(t, WithAvoidance(false))
	mustAdd(t, h.c, sigOf(DeadlockSig, fr("test.W", "p1", 1), fr("test.W", "p2", 2)))
	t1, t2 := h.thread("t1"), h.thread("t2")
	lA, lB := h.lock("A"), h.lock("B")
	p1, p2 := h.pos("W", "p1", 1), h.pos("W", "p2", 2)

	h.acquire(t1, lA, p1)
	// With avoidance off this proceeds immediately.
	h.acquire(t2, lB, p2)
	if st := h.c.Stats(); st.Yields != 0 {
		t.Errorf("avoidance disabled: yields = %d, want 0", st.Yields)
	}
}

// TestMatchSignatureOracle cross-checks the backtracking matcher against a
// brute-force assignment enumeration on randomized small scenarios.
func TestMatchSignatureOracle(t *testing.T) {
	type scenario struct {
		slots      []int // slot -> position index
		queues     [][]int
		pretendPos int
		pretendIn  bool
	}
	scenarios := []scenario{
		{slots: []int{0, 1}, queues: [][]int{{1}, {}}, pretendPos: 1, pretendIn: true},
		{slots: []int{0, 1}, queues: [][]int{{1}, {}}, pretendPos: 0, pretendIn: false},
		{slots: []int{0, 0}, queues: [][]int{{1}, {}}, pretendPos: 0, pretendIn: true},
		{slots: []int{0, 0}, queues: [][]int{{1, 2}, {}}, pretendPos: 0, pretendIn: true},
		{slots: []int{0, 1, 2}, queues: [][]int{{1}, {2}, {}}, pretendPos: 2, pretendIn: true},
		{slots: []int{0, 1, 2}, queues: [][]int{{1}, {1}, {}}, pretendPos: 2, pretendIn: false},
		{slots: []int{0, 1}, queues: [][]int{{1, 1}, {}}, pretendPos: 1, pretendIn: true},
	}
	for si, sc := range scenarios {
		t.Run(fmt.Sprintf("scenario%d", si), func(t *testing.T) {
			nPos := len(sc.queues)
			positions := make([]*Position, nPos)
			for i := range positions {
				positions[i] = &Position{key: fmt.Sprintf("p%d", i)}
			}
			threads := map[int]*Node{}
			threadOf := func(id int) *Node {
				if th, ok := threads[id]; ok {
					return th
				}
				th := &Node{kind: ThreadNode, id: uint64(id), name: fmt.Sprintf("t%d", id)}
				threads[id] = th
				return th
			}
			for pi, q := range sc.queues {
				for _, tid := range q {
					positions[pi].takeEntry(threadOf(tid), true)
				}
			}
			pretender := threadOf(1000)
			sig := &Signature{Kind: DeadlockSig}
			for _, s := range sc.slots {
				sig.slots = append(sig.slots, positions[s])
			}

			scratch := &Core{}
			got := scratch.matchSignatureLocked(sig, pretender, positions[sc.pretendPos]) != nil
			want := bruteForceMatch(sig.slots, pretender, positions[sc.pretendPos])
			if got != want {
				t.Errorf("matchSignature = %v, brute force = %v", got, want)
			}
			if got != sc.pretendIn {
				t.Errorf("matchSignature = %v, scenario expects %v", got, sc.pretendIn)
			}
		})
	}
}

// bruteForceMatch enumerates all assignments of distinct threads to slots.
func bruteForceMatch(slots []*Position, t *Node, pos *Position) bool {
	// Gather candidates per slot.
	cands := make([][]*Node, len(slots))
	for i, p := range slots {
		var set []*Node
		set = p.distinctThreads(set)
		if p == pos {
			dup := false
			for _, x := range set {
				if x == t {
					dup = true
				}
			}
			if !dup {
				set = append(set, t)
			}
		}
		cands[i] = set
	}
	var rec func(i int, used map[*Node]bool) bool
	rec = func(i int, used map[*Node]bool) bool {
		if i == len(slots) {
			return true
		}
		for _, c := range cands[i] {
			if used[c] {
				continue
			}
			used[c] = true
			if rec(i+1, used) {
				return true
			}
			delete(used, c)
		}
		return false
	}
	return rec(0, map[*Node]bool{})
}

// TestAvoidanceConcurrentStress hammers a signature-laden core from many
// goroutines; the run must terminate (no lost wakeups) and never detect a
// deadlock.
func TestAvoidanceConcurrentStress(t *testing.T) {
	h := newHarness(t)
	mustAdd(t, h.c, sigOf(DeadlockSig, fr("test.S", "a", 1), fr("test.S", "b", 2)))

	const workers = 8
	const iters = 200
	pa, pb := h.pos("S", "a", 1), h.pos("S", "b", 2)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := h.c.NewThreadNode(fmt.Sprintf("w%d", w), nil)
			l := h.c.NewLockNode(fmt.Sprintf("lock%d", w))
			pos := pa
			if w%2 == 1 {
				pos = pb
			}
			for i := 0; i < iters; i++ {
				if err := h.c.Request(th, l, pos); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				h.c.Acquired(th, l)
				h.c.Release(th, l)
			}
		}(w)
	}
	wg.Wait()
	if st := h.c.Stats(); st.DeadlocksDetected != 0 {
		t.Errorf("stress run detected %d deadlocks, want 0", st.DeadlocksDetected)
	}
}
