package core

import (
	"testing"
	"time"
)

// starvationScenario prepares the canonical avoidance-induced deadlock:
// signature S={p1,p2}; thread B holds l0; thread A occupies p1.
// If B then yields at p2 (witness A) and A blocks on l0 (held by B),
// nothing can progress.
type starvationScenario struct {
	h          *harness
	a, b       *Node
	lX, l0, lY *Node
	p0, p1, p2 *Position
	p3         *Position
}

func newStarvationScenario(t *testing.T, opts ...Option) *starvationScenario {
	h := newHarness(t, opts...)
	mustAdd(t, h.c, sigOf(DeadlockSig, fr("test.S", "p1", 1), fr("test.S", "p2", 2)))
	s := &starvationScenario{
		h:  h,
		a:  h.thread("A"),
		b:  h.thread("B"),
		lX: h.lock("X"),
		l0: h.lock("l0"),
		lY: h.lock("Y"),
		p0: h.pos("S", "p0", 0),
		p1: h.pos("S", "p1", 1),
		p2: h.pos("S", "p2", 2),
		p3: h.pos("S", "p3", 3),
	}
	s.h.acquire(s.b, s.l0, s.p0)
	s.h.acquire(s.a, s.lX, s.p1)
	return s
}

// TestStarvationDetectedByScan: B yields first, then A blocks on B's lock;
// the post-approval scan must detect the yield cycle, save a starvation
// signature, and force-resume B.
func TestStarvationDetectedByScan(t *testing.T) {
	s := newStarvationScenario(t)
	h := s.h

	bDone := make(chan error, 1)
	go func() { bDone <- h.c.Request(s.b, s.lY, s.p2) }()
	waitUntil(t, "B yields", func() bool { return h.c.Stats().Yields == 1 })

	// A requests l0 (held by B): creates the edge A→B, closing the cycle
	// B →(yield) A →(lock) B. The approval scan fires starvation handling.
	if err := h.c.Request(s.a, s.l0, s.p3); err != nil {
		t.Fatal(err)
	}
	if err := <-bDone; err != nil {
		t.Fatalf("B must be force-resumed, got %v", err)
	}
	h.c.Acquired(s.b, s.lY)

	st := h.c.Stats()
	if st.Starvations != 1 {
		t.Errorf("Starvations = %d, want 1", st.Starvations)
	}
	if st.ForcedResumes != 1 {
		t.Errorf("ForcedResumes = %d, want 1", st.ForcedResumes)
	}
	var starv *SignatureInfo
	for _, info := range h.c.History() {
		if info.Kind == StarvationSig {
			starv = &info
			break
		}
	}
	if starv == nil {
		t.Fatal("starvation signature not recorded")
	}
	outs := map[string]bool{}
	for _, p := range starv.Pairs {
		outs[p.Outer.Key()] = true
	}
	if !outs["test.S.p2:2"] || !outs["test.S.p1:1"] {
		t.Errorf("starvation signature positions = %v, want {p2, p1}", outs)
	}

	// B can now finish: it releases l0's dependency by completing its work.
	h.c.Release(s.b, s.lY)
	h.c.Release(s.b, s.l0)
	h.c.Acquired(s.a, s.l0)
	h.c.Release(s.a, s.l0)
}

// TestStarvationPreCheck: the cycle exists before the yield (A already
// blocked on B), so B must not suspend at all.
func TestStarvationPreCheck(t *testing.T) {
	s := newStarvationScenario(t)
	h := s.h

	// A blocks on l0 first.
	if err := h.c.Request(s.a, s.l0, s.p3); err != nil {
		t.Fatal(err)
	}
	// B engages the signature: instantiation found, but yielding would
	// starve immediately — proceed instead.
	if err := h.c.Request(s.b, s.lY, s.p2); err != nil {
		t.Fatal(err)
	}
	st := h.c.Stats()
	if st.Yields != 0 {
		t.Errorf("Yields = %d, want 0 (pre-check starvation)", st.Yields)
	}
	if st.Starvations != 1 {
		t.Errorf("Starvations = %d, want 1", st.Starvations)
	}
}

// TestStarvationSuppressionNextRun: once the starvation signature is in
// history, a fresh process does not repeat the starving yield.
func TestStarvationSuppressionNextRun(t *testing.T) {
	store := NewMemHistory()

	// Run 1: produce the starvation.
	s1 := newStarvationScenarioWithStore(t, store)
	h1 := s1.h
	bDone := make(chan error, 1)
	go func() { bDone <- h1.c.Request(s1.b, s1.lY, s1.p2) }()
	waitUntil(t, "B yields", func() bool { return h1.c.Stats().Yields == 1 })
	if err := h1.c.Request(s1.a, s1.l0, s1.p3); err != nil {
		t.Fatal(err)
	}
	if err := <-bDone; err != nil {
		t.Fatal(err)
	}
	if store.Len() != 2 { // deadlock sig (pre-seeded) + starvation sig
		t.Fatalf("store has %d sigs after run 1, want 2", store.Len())
	}

	// Run 2: same pattern; the yield must be suppressed.
	s2 := newStarvationScenarioWithStore(t, store)
	h2 := s2.h
	if err := h2.c.Request(s2.b, s2.lY, s2.p2); err != nil {
		t.Fatal(err)
	}
	st := h2.c.Stats()
	if st.Yields != 0 {
		t.Errorf("run 2 Yields = %d, want 0 (suppressed)", st.Yields)
	}
	if st.SuppressedYields != 1 {
		t.Errorf("run 2 SuppressedYields = %d, want 1", st.SuppressedYields)
	}
}

// newStarvationScenarioWithStore seeds the deadlock signature through the
// store so run 2 cores see both it and any starvation signatures.
func newStarvationScenarioWithStore(t *testing.T, store *MemHistory) *starvationScenario {
	if store.Len() == 0 {
		if err := store.Append(sigOf(DeadlockSig, fr("test.S", "p1", 1), fr("test.S", "p2", 2))); err != nil {
			t.Fatal(err)
		}
	}
	h := newHarness(t, WithStore(store))
	s := &starvationScenario{
		h:  h,
		a:  h.thread("A"),
		b:  h.thread("B"),
		lX: h.lock("X"),
		l0: h.lock("l0"),
		lY: h.lock("Y"),
		p0: h.pos("S", "p0", 0),
		p1: h.pos("S", "p1", 1),
		p2: h.pos("S", "p2", 2),
		p3: h.pos("S", "p3", 3),
	}
	s.h.acquire(s.b, s.l0, s.p0)
	s.h.acquire(s.a, s.lX, s.p1)
	return s
}

// TestStarvationTimeoutFallback: with the timeout mode, a yield that simply
// never dissolves (witness running forever) is cut short by the watchdog.
func TestStarvationTimeoutFallback(t *testing.T) {
	h := newHarness(t,
		WithStarvation(StarvationTimeout),
		WithYieldTimeout(30*time.Millisecond),
		WithWatchdog(10*time.Millisecond),
	)
	mustAdd(t, h.c, sigOf(DeadlockSig, fr("test.S", "p1", 1), fr("test.S", "p2", 2)))
	a, b := h.thread("A"), h.thread("B")
	lX, lY := h.lock("X"), h.lock("Y")
	p1, p2 := h.pos("S", "p1", 1), h.pos("S", "p2", 2)

	h.acquire(a, lX, p1) // A holds forever — no cycle, just no progress
	done := make(chan error, 1)
	go func() { done <- h.c.Request(b, lY, p2) }()

	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout fallback did not fire")
	}
	st := h.c.Stats()
	if st.Starvations != 1 || st.ForcedResumes != 1 {
		t.Errorf("starvations=%d forced=%d, want 1/1", st.Starvations, st.ForcedResumes)
	}
}

// TestCheckStarvationNow drives the scan manually instead of via watchdog.
func TestCheckStarvationNow(t *testing.T) {
	h := newHarness(t,
		WithStarvation(StarvationTimeout),
		WithYieldTimeout(time.Nanosecond),
		WithWatchdog(time.Hour), // effectively never fires on its own
	)
	mustAdd(t, h.c, sigOf(DeadlockSig, fr("test.S", "p1", 1), fr("test.S", "p2", 2)))
	a, b := h.thread("A"), h.thread("B")
	lX, lY := h.lock("X"), h.lock("Y")
	p1, p2 := h.pos("S", "p1", 1), h.pos("S", "p2", 2)

	h.acquire(a, lX, p1)
	done := make(chan error, 1)
	go func() { done <- h.c.Request(b, lY, p2) }()
	waitUntil(t, "B yields", func() bool { return h.c.Stats().Yields == 1 })

	h.c.CheckStarvationNow()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("CheckStarvationNow did not resume the yielder")
	}
}

// TestStarvationOffMode: the cycle forms but nothing intervenes; the
// yielder stays suspended until the witness releases (which the test does
// to avoid leaking the goroutine).
func TestStarvationOffMode(t *testing.T) {
	s := newStarvationScenario(t)
	// Rebuild with starvation off (scenario helper uses defaults).
	h := newHarness(t, WithStarvation(StarvationOff))
	mustAdd(t, h.c, sigOf(DeadlockSig, fr("test.S", "p1", 1), fr("test.S", "p2", 2)))
	a, b := h.thread("A"), h.thread("B")
	lX, lY := h.lock("X"), h.lock("Y")
	p1, p2 := h.pos("S", "p1", 1), h.pos("S", "p2", 2)
	_ = s

	h.acquire(a, lX, p1)
	done := make(chan error, 1)
	go func() { done <- h.c.Request(b, lY, p2) }()
	waitUntil(t, "B yields", func() bool { return h.c.Stats().Yields == 1 })

	h.c.CheckStarvationNow() // must be a no-op
	select {
	case <-done:
		t.Fatal("starvation off: B must stay suspended")
	case <-time.After(20 * time.Millisecond):
	}
	h.release(a, lX)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if st := h.c.Stats(); st.Starvations != 0 {
		t.Errorf("Starvations = %d, want 0", st.Starvations)
	}
}

// TestStarvationEventEmitted verifies the event stream carries the
// starvation notification.
func TestStarvationEventEmitted(t *testing.T) {
	s := newStarvationScenario(t)
	h := s.h
	rec := recordEvents(t, h.c)

	if err := h.c.Request(s.a, s.l0, s.p3); err != nil {
		t.Fatal(err)
	}
	if err := h.c.Request(s.b, s.lY, s.p2); err != nil {
		t.Fatal(err)
	}
	_ = h.c.Close()
	<-rec.done
	if rec.count(EventStarvation) != 1 {
		t.Errorf("EventStarvation count = %d, want 1", rec.count(EventStarvation))
	}
	ev, _ := rec.find(EventStarvation)
	if ev.Sig.Kind != StarvationSig {
		t.Errorf("event signature kind = %v, want StarvationSig", ev.Sig.Kind)
	}
}
