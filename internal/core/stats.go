package core

import (
	"sync/atomic"
	"unsafe"
)

// Stats counts core activity. All counters are cumulative since Core
// creation. Snapshot with Core.Stats. Inside the core every field is
// updated with sync/atomic (the fast path runs without the engine lock);
// the Requests/Acquisitions/Releases totals include their fast-path
// subsets, which the internal representation keeps in the Fast* fields
// only (folded together by snapshot).
type Stats struct {
	// Requests counts Request calls (monitorenter interceptions),
	// including fast-path ones.
	Requests uint64
	// FastRequests counts Requests approved on the sharded fast path
	// (no detection or avoidance needed).
	FastRequests uint64
	// Acquisitions counts Acquired calls, including fast-path ones.
	Acquisitions uint64
	// FastAcquisitions counts Acquired calls on the fast path.
	FastAcquisitions uint64
	// Releases counts Release calls (monitorexit interceptions),
	// including fast-path ones.
	Releases uint64
	// FastReleases counts Release calls on the fast path.
	FastReleases uint64
	// Aborts counts approved requests undone via Abort.
	Aborts uint64
	// CycleWalks counts RAG chain walks performed by detection.
	CycleWalks uint64
	// DeadlocksDetected counts new deadlock signatures discovered.
	DeadlocksDetected uint64
	// DuplicateDeadlocks counts detections whose signature was already in
	// the history (the same bug reoccurring).
	DuplicateDeadlocks uint64
	// AvoidanceChecks counts signature-instantiation matchings attempted.
	AvoidanceChecks uint64
	// InstantiationsFound counts matchings that succeeded (led to a yield
	// or a starvation verdict).
	InstantiationsFound uint64
	// Yields counts avoidance suspensions.
	Yields uint64
	// Resumes counts threads that resumed from avoidance and proceeded.
	Resumes uint64
	// Starvations counts avoidance-induced deadlocks detected.
	Starvations uint64
	// SuppressedYields counts yields skipped because the yield state
	// matched a recorded starvation signature.
	SuppressedYields uint64
	// ForcedResumes counts threads force-resumed by starvation handling.
	ForcedResumes uint64
	// SignaturesLoaded counts signatures installed from the store at
	// construction.
	SignaturesLoaded uint64
	// SignaturesAdded counts new signatures installed at runtime.
	SignaturesAdded uint64
	// SignaturesInstalled counts signatures hot-installed from outside the
	// process (the immunity service's live propagation path); each is also
	// counted in SignaturesAdded.
	SignaturesInstalled uint64
	// PersistErrors counts failed history store appends (the in-memory
	// history still protects the current run).
	PersistErrors uint64
	// EventsDropped counts events discarded because the event buffer was
	// full.
	EventsDropped uint64
	// Misuse counts API sequencing violations detected and tolerated
	// (e.g. Release of a lock the core never saw acquired).
	Misuse uint64
}

// snapshot atomically reads every counter. The Fast* fields of the
// internal representation hold only the folded counts of retired thread
// nodes; Core.Stats adds the live nodes' counters and folds the totals.
func (s *Stats) snapshot() Stats {
	out := Stats{
		Requests:            atomic.LoadUint64(&s.Requests),
		Acquisitions:        atomic.LoadUint64(&s.Acquisitions),
		Releases:            atomic.LoadUint64(&s.Releases),
		FastRequests:        atomic.LoadUint64(&s.FastRequests),
		FastAcquisitions:    atomic.LoadUint64(&s.FastAcquisitions),
		FastReleases:        atomic.LoadUint64(&s.FastReleases),
		Aborts:              atomic.LoadUint64(&s.Aborts),
		CycleWalks:          atomic.LoadUint64(&s.CycleWalks),
		DeadlocksDetected:   atomic.LoadUint64(&s.DeadlocksDetected),
		DuplicateDeadlocks:  atomic.LoadUint64(&s.DuplicateDeadlocks),
		AvoidanceChecks:     atomic.LoadUint64(&s.AvoidanceChecks),
		InstantiationsFound: atomic.LoadUint64(&s.InstantiationsFound),
		Yields:              atomic.LoadUint64(&s.Yields),
		Resumes:             atomic.LoadUint64(&s.Resumes),
		Starvations:         atomic.LoadUint64(&s.Starvations),
		SuppressedYields:    atomic.LoadUint64(&s.SuppressedYields),
		ForcedResumes:       atomic.LoadUint64(&s.ForcedResumes),
		SignaturesLoaded:    atomic.LoadUint64(&s.SignaturesLoaded),
		SignaturesAdded:     atomic.LoadUint64(&s.SignaturesAdded),
		SignaturesInstalled: atomic.LoadUint64(&s.SignaturesInstalled),
		PersistErrors:       atomic.LoadUint64(&s.PersistErrors),
		EventsDropped:       atomic.LoadUint64(&s.EventsDropped),
		Misuse:              atomic.LoadUint64(&s.Misuse),
	}
	return out
}

// MemStats describes the memory footprint of a Core's data structures —
// the quantity behind the paper's 4% platform memory overhead claim.
type MemStats struct {
	// Positions is the number of interned Position objects.
	Positions int
	// Signatures is the number of installed signatures.
	Signatures int
	// Nodes is the number of live RAG nodes (created minus retired).
	Nodes int
	// QueueEntriesLive is the number of entries currently in position
	// queues (threads holding or allowed to wait).
	QueueEntriesLive int
	// QueueEntriesFree is the number of entries parked on free lists.
	QueueEntriesFree int
	// QueueEntriesAllocated is the total number of entries ever allocated;
	// with queue reuse on, it plateaus at the high-water mark of
	// concurrent acquisitions per position.
	QueueEntriesAllocated uint64
	// Bytes is the estimated total footprint in bytes of positions,
	// entries, signatures and nodes (struct sizes plus owned strings and
	// slices).
	Bytes int64
}

// Struct sizes used by the footprint estimate.
const (
	sizeofPosition  = int64(unsafe.Sizeof(Position{}))
	sizeofEntry     = int64(unsafe.Sizeof(entry{}))
	sizeofNode      = int64(unsafe.Sizeof(Node{}))
	sizeofSignature = int64(unsafe.Sizeof(Signature{}))
	sizeofFrame     = int64(unsafe.Sizeof(Frame{}))
	sizeofSigPair   = int64(unsafe.Sizeof(SigPair{}))
)

// stackBytes estimates the owned bytes of a call stack.
func stackBytes(cs CallStack) int64 {
	b := sizeofFrame * int64(len(cs))
	for _, f := range cs {
		b += int64(len(f.Class) + len(f.Method))
	}
	return b
}

// memStatsLocked computes the footprint. Caller must hold c.mu
// exclusively (freezing the position queues); the shard and history locks
// are taken per the lock order.
func (c *Core) memStatsLocked() MemStats {
	// Live nodes only: retired (dead-thread / deflated-monitor) nodes no
	// longer occupy memory, so the footprint counts the registry, not the
	// cumulative creation counter.
	c.nodesMu.Lock()
	nodes := int64(len(c.threadNodes) + len(c.lockNodes))
	c.nodesMu.Unlock()
	ms := MemStats{
		Nodes:                 int(nodes),
		QueueEntriesAllocated: c.entriesAllocated.Load(),
	}
	var bytes int64
	c.positions.forEach(func(key string, p *Position) {
		ms.Positions++
		bytes += sizeofPosition + int64(len(key)) + stackBytes(p.stack)
		ms.QueueEntriesLive += p.queue.len()
		ms.QueueEntriesFree += p.free.len()
		// sigs slice headers.
		bytes += int64(len(p.sigs)) * 8
	})
	bytes += int64(ms.QueueEntriesLive+ms.QueueEntriesFree) * sizeofEntry
	c.histMu.Lock()
	ms.Signatures = len(c.history)
	for _, s := range c.history {
		bytes += sizeofSignature
		for _, pr := range s.Pairs {
			bytes += sizeofSigPair + stackBytes(pr.Outer) + stackBytes(pr.Inner)
		}
		bytes += int64(len(s.slots)) * 8
	}
	c.histMu.Unlock()
	bytes += nodes * sizeofNode
	ms.Bytes = bytes
	return ms
}
