package core

import (
	"errors"
	"fmt"
)

var (
	// ErrCoreClosed is returned by operations on a Core after Close.
	// Threads suspended in avoidance are woken with this error so the
	// embedding runtime can unwind them (process teardown / reboot).
	ErrCoreClosed = errors.New("dimmunix core closed")
)

// DeadlockError is returned by Request under PolicyFail when granting the
// acquisition would complete a deadlock cycle. The signature has already
// been recorded in the history when the error is returned.
type DeadlockError struct {
	// Sig is the recorded signature of the detected deadlock.
	Sig SignatureInfo
}

// Error implements error.
func (e *DeadlockError) Error() string {
	return fmt.Sprintf("deadlock detected: %s", e.Sig)
}
