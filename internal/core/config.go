package core

import (
	"fmt"
	"time"
)

// DeadlockPolicy selects what Request does when it detects that granting
// the acquisition would complete a deadlock cycle.
type DeadlockPolicy int

const (
	// PolicyFreeze records the signature and lets the acquisition proceed,
	// so the deadlock actually happens — the faithful Dalvik behaviour
	// (monitorenter cannot fail): the phone hangs once, the signature is
	// persisted, and after reboot the deadlock is avoided.
	PolicyFreeze DeadlockPolicy = iota + 1
	// PolicyFail records the signature and returns ErrDeadlockDetected
	// from Request, letting the embedding runtime unwind the thread (used
	// by tests and by simulations that model a crash-and-restart instead
	// of a freeze).
	PolicyFail
)

// String returns a readable policy name.
func (p DeadlockPolicy) String() string {
	switch p {
	case PolicyFreeze:
		return "freeze"
	case PolicyFail:
		return "fail"
	default:
		return fmt.Sprintf("DeadlockPolicy(%d)", int(p))
	}
}

// StarvationMode selects how avoidance-induced deadlocks are detected.
type StarvationMode int

const (
	// StarvationCycle detects starvation by finding cycles through yield
	// edges in the waits-for relation, checked whenever a thread is about
	// to yield. This is precise and immediate.
	StarvationCycle StarvationMode = iota + 1
	// StarvationTimeout additionally treats any yield lasting longer than
	// Config.YieldTimeout as starvation (conservative fallback; requires
	// the watchdog).
	StarvationTimeout
	// StarvationOff disables starvation handling; yields can block forever
	// (only for controlled experiments).
	StarvationOff
)

// String returns a readable mode name.
func (m StarvationMode) String() string {
	switch m {
	case StarvationCycle:
		return "cycle"
	case StarvationTimeout:
		return "cycle+timeout"
	case StarvationOff:
		return "off"
	default:
		return fmt.Sprintf("StarvationMode(%d)", int(m))
	}
}

// Config carries the tunables of a Core. The zero value is not valid; use
// DefaultConfig or New with options.
type Config struct {
	// OuterDepth is the number of frames kept in outer call stacks.
	// The paper uses 1 (§3.2); deeper stacks lower the false-positive rate
	// at a higher capture cost (see the custom-wrapper example).
	OuterDepth int
	// Detection enables deadlock detection (cycle search on Request).
	Detection bool
	// Avoidance enables signature-instantiation avoidance.
	Avoidance bool
	// Policy selects the reaction to a detected deadlock.
	Policy DeadlockPolicy
	// Starvation selects the avoidance-induced-deadlock strategy.
	Starvation StarvationMode
	// YieldTimeout bounds a single avoidance yield under
	// StarvationTimeout.
	YieldTimeout time.Duration
	// WatchdogPeriod, when positive, runs a background scanner that
	// re-checks yielding threads for starvation (needed for
	// StarvationTimeout; optional for StarvationCycle).
	WatchdogPeriod time.Duration
	// EventBuffer is the capacity of the event channel; events beyond it
	// are dropped (counted in Stats.EventsDropped).
	EventBuffer int
	// QueueReuse enables the §4 two-queue entry recycling. Disabling it is
	// ablation A2.
	QueueReuse bool
	// Serial disables the sharded fast path, forcing every interception
	// through the paper's single global engine lock — the serial reference
	// engine used for equivalence tests and as the before/after baseline
	// in microbenchmarks.
	Serial bool
	// Store, when non-nil, is the persistent history: loaded by New,
	// appended to on every new signature.
	Store HistoryStore
}

// DefaultConfig returns the paper's configuration: depth-1 outer stacks,
// detection and avoidance on, freeze policy, cycle-based starvation
// handling, queue reuse on.
func DefaultConfig() Config {
	return Config{
		OuterDepth:     1,
		Detection:      true,
		Avoidance:      true,
		Policy:         PolicyFreeze,
		Starvation:     StarvationCycle,
		YieldTimeout:   500 * time.Millisecond,
		WatchdogPeriod: 0,
		EventBuffer:    256,
		QueueReuse:     true,
	}
}

// validate rejects inconsistent configurations.
func (c Config) validate() error {
	if c.OuterDepth < 1 {
		return fmt.Errorf("config: OuterDepth must be >= 1, got %d", c.OuterDepth)
	}
	switch c.Policy {
	case PolicyFreeze, PolicyFail:
	default:
		return fmt.Errorf("config: invalid policy %d", int(c.Policy))
	}
	switch c.Starvation {
	case StarvationCycle, StarvationTimeout, StarvationOff:
	default:
		return fmt.Errorf("config: invalid starvation mode %d", int(c.Starvation))
	}
	if c.Starvation == StarvationTimeout {
		if c.YieldTimeout <= 0 {
			return fmt.Errorf("config: StarvationTimeout requires positive YieldTimeout, got %v", c.YieldTimeout)
		}
		if c.WatchdogPeriod <= 0 {
			return fmt.Errorf("config: StarvationTimeout requires positive WatchdogPeriod, got %v", c.WatchdogPeriod)
		}
	}
	if c.EventBuffer < 0 {
		return fmt.Errorf("config: negative EventBuffer %d", c.EventBuffer)
	}
	return nil
}

// Option mutates a Config in New.
type Option func(*Config)

// WithOuterDepth sets the outer call-stack depth (paper default: 1).
func WithOuterDepth(depth int) Option {
	return func(c *Config) { c.OuterDepth = depth }
}

// WithDetection toggles deadlock detection.
func WithDetection(on bool) Option {
	return func(c *Config) { c.Detection = on }
}

// WithAvoidance toggles signature avoidance.
func WithAvoidance(on bool) Option {
	return func(c *Config) { c.Avoidance = on }
}

// WithPolicy sets the deadlock reaction policy.
func WithPolicy(p DeadlockPolicy) Option {
	return func(c *Config) { c.Policy = p }
}

// WithStarvation sets the starvation mode.
func WithStarvation(m StarvationMode) Option {
	return func(c *Config) { c.Starvation = m }
}

// WithYieldTimeout sets the yield timeout for StarvationTimeout mode.
func WithYieldTimeout(d time.Duration) Option {
	return func(c *Config) { c.YieldTimeout = d }
}

// WithWatchdog enables the background starvation scanner with the given
// period.
func WithWatchdog(period time.Duration) Option {
	return func(c *Config) { c.WatchdogPeriod = period }
}

// WithStore attaches a persistent history store.
func WithStore(s HistoryStore) Option {
	return func(c *Config) { c.Store = s }
}

// WithEventBuffer sets the event channel capacity.
func WithEventBuffer(n int) Option {
	return func(c *Config) { c.EventBuffer = n }
}

// WithQueueReuse toggles the two-queue entry recycling (ablation A2).
func WithQueueReuse(on bool) Option {
	return func(c *Config) { c.QueueReuse = on }
}

// WithSerialEngine selects the serial reference engine: every Request,
// Acquired and Release serializes on the global engine lock, as in the
// paper's §4 implementation. Off (the default) enables the sharded
// low-contention fast path.
func WithSerialEngine(on bool) Option {
	return func(c *Config) { c.Serial = on }
}
