package core

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
)

// The persistent deadlock history is a line-oriented text file:
//
//	#dimmunix-history v1
//	sig deadlock
//	pair outer=Class.m:12 inner=Class.m:12;Caller.run:3
//	pair outer=Other.n:7 inner=Other.n:7;Caller.run:9
//	end
//	sig starvation
//	...
//	end
//
// Outer and inner stacks are ';'-joined frames, innermost first. The format
// is append-friendly: each detection appends one complete sig..end block
// and flushes, so a crash can at worst truncate the final block, which the
// loader reports (or skips in lenient mode) without losing earlier
// signatures.

// historyHeader is the first line of every history file.
const historyHeader = "#dimmunix-history v1"

var (
	// ErrHistoryFormat reports a malformed history file.
	ErrHistoryFormat = errors.New("malformed dimmunix history")
)

// EncodeHistory writes the signatures to w in the history file format.
func EncodeHistory(w io.Writer, sigs []*Signature) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, historyHeader); err != nil {
		return fmt.Errorf("encode history: %w", err)
	}
	for i, s := range sigs {
		if err := encodeSignature(bw, s); err != nil {
			return fmt.Errorf("encode history: signature %d: %w", i, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("encode history: %w", err)
	}
	return nil
}

// encodeSignature writes one sig..end block.
func encodeSignature(w io.Writer, s *Signature) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "sig %s\n", s.Kind); err != nil {
		return err
	}
	for _, p := range s.Pairs {
		if _, err := fmt.Fprintf(w, "pair outer=%s inner=%s\n", p.Outer.Key(), p.Inner.Key()); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "end\n"); err != nil {
		return err
	}
	return nil
}

// DecodeHistory parses a history file. In strict mode any malformed block
// aborts with an error wrapping ErrHistoryFormat; in lenient mode malformed
// blocks are skipped and counted, so a history truncated by a crash still
// yields its intact prefix — the phone must keep booting even if the last
// write was torn.
func DecodeHistory(r io.Reader, lenient bool) (sigs []*Signature, skipped int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0

	readLine := func() (string, bool) {
		for sc.Scan() {
			lineNo++
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			return line, true
		}
		return "", false
	}

	fail := func(format string, args ...any) error {
		msg := fmt.Sprintf(format, args...)
		return fmt.Errorf("%w: line %d: %s", ErrHistoryFormat, lineNo, msg)
	}

	header, ok := readLine()
	if !ok {
		// An empty file is an empty history.
		if scanErr := sc.Err(); scanErr != nil {
			return nil, 0, fmt.Errorf("decode history: %w", scanErr)
		}
		return nil, 0, nil
	}
	if header != historyHeader {
		return nil, 0, fail("expected header %q, got %q", historyHeader, header)
	}

	for {
		line, ok := readLine()
		if !ok {
			break
		}
		kindName, found := strings.CutPrefix(line, "sig ")
		if !found {
			if lenient {
				skipped++
				continue
			}
			return nil, skipped, fail("expected 'sig <kind>', got %q", line)
		}
		sig, blockErr := decodeSigBlock(kindName, readLine)
		if blockErr != nil {
			if lenient {
				skipped++
				continue
			}
			return nil, skipped, fmt.Errorf("%w: line %d: %s", ErrHistoryFormat, lineNo, blockErr)
		}
		sigs = append(sigs, sig)
	}
	if scanErr := sc.Err(); scanErr != nil {
		return nil, skipped, fmt.Errorf("decode history: %w", scanErr)
	}
	return sigs, skipped, nil
}

// decodeSigBlock parses the pair lines of one signature until its "end".
func decodeSigBlock(kindName string, readLine func() (string, bool)) (*Signature, error) {
	kind, err := parseSigKind(strings.TrimSpace(kindName))
	if err != nil {
		return nil, err
	}
	sig := &Signature{Kind: kind}
	for {
		line, ok := readLine()
		if !ok {
			return nil, errors.New("unexpected EOF inside signature block")
		}
		if line == "end" {
			break
		}
		rest, found := strings.CutPrefix(line, "pair ")
		if !found {
			return nil, fmt.Errorf("expected 'pair' or 'end', got %q", line)
		}
		pair, pairErr := decodePair(rest)
		if pairErr != nil {
			return nil, pairErr
		}
		sig.Pairs = append(sig.Pairs, pair)
	}
	if err := sig.Validate(); err != nil {
		return nil, err
	}
	return sig, nil
}

// decodePair parses "outer=<stack> inner=<stack>".
func decodePair(s string) (SigPair, error) {
	outerPart, innerPart, found := strings.Cut(s, " ")
	if !found {
		return SigPair{}, fmt.Errorf("pair %q: missing inner field", s)
	}
	outerKey, ok := strings.CutPrefix(outerPart, "outer=")
	if !ok {
		return SigPair{}, fmt.Errorf("pair %q: missing outer= field", s)
	}
	innerKey, ok := strings.CutPrefix(strings.TrimSpace(innerPart), "inner=")
	if !ok {
		return SigPair{}, fmt.Errorf("pair %q: missing inner= field", s)
	}
	outer, err := ParseCallStack(outerKey)
	if err != nil {
		return SigPair{}, fmt.Errorf("pair outer: %w", err)
	}
	inner, err := ParseCallStack(innerKey)
	if err != nil {
		return SigPair{}, fmt.Errorf("pair inner: %w", err)
	}
	return SigPair{Outer: outer, Inner: inner}, nil
}

// HistoryStore abstracts the persistent deadlock history. A store is shared
// by all processes of a platform: each process loads the full history at
// fork time (initDimmunix) and appends newly discovered signatures.
// Implementations must be safe for concurrent use.
type HistoryStore interface {
	// Load returns all signatures currently in the store.
	Load() ([]*Signature, error)
	// Append durably adds one signature to the store.
	Append(sig *Signature) error
}

// FileHistory is a HistoryStore backed by a file on disk, the equivalent of
// the paper's persistent history that survives phone reboots. Appends are
// flushed (and synced when Sync is set) before returning. Appends and loads
// take an advisory file lock (on unix), so several handles — including
// handles in different OS processes — can share one history file without
// tearing sig..end blocks or duplicating the header.
type FileHistory struct {
	mu      sync.Mutex
	path    string
	lenient bool
	sync    bool
}

var _ HistoryStore = (*FileHistory)(nil)

// FileHistoryOption configures a FileHistory.
type FileHistoryOption func(*FileHistory)

// WithLenientLoad makes Load skip malformed blocks instead of failing.
func WithLenientLoad() FileHistoryOption {
	return func(f *FileHistory) { f.lenient = true }
}

// WithFsync makes every append fsync the file, trading latency for
// durability across power loss.
func WithFsync() FileHistoryOption {
	return func(f *FileHistory) { f.sync = true }
}

// NewFileHistory creates a store at path. The file is created on first
// append; a missing file loads as an empty history.
func NewFileHistory(path string, opts ...FileHistoryOption) *FileHistory {
	f := &FileHistory{path: path}
	for _, opt := range opts {
		opt(f)
	}
	return f
}

// Path returns the backing file path.
func (f *FileHistory) Path() string { return f.path }

// Load reads all signatures from the backing file.
func (f *FileHistory) Load() ([]*Signature, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	file, err := os.Open(f.path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("load history: %w", err)
	}
	defer file.Close()
	if err := lockFile(file, false); err != nil {
		return nil, fmt.Errorf("load history: lock: %w", err)
	}
	defer unlockFile(file)
	sigs, _, err := DecodeHistory(file, f.lenient)
	if err != nil {
		return nil, fmt.Errorf("load history %s: %w", f.path, err)
	}
	return sigs, nil
}

// Append durably adds one signature, creating the file with its header on
// first use.
func (f *FileHistory) Append(sig *Signature) error {
	if err := sig.Validate(); err != nil {
		return fmt.Errorf("append history: %w", err)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	file, err := os.OpenFile(f.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("append history: %w", err)
	}
	defer file.Close()
	// The advisory lock serializes appends across handles and processes;
	// the size check for the header must happen under it, or two writers
	// can both see an empty file and emit duplicate headers.
	if err := lockFile(file, true); err != nil {
		return fmt.Errorf("append history: lock: %w", err)
	}
	defer unlockFile(file)
	info, err := file.Stat()
	if err != nil {
		return fmt.Errorf("append history: %w", err)
	}
	var buf strings.Builder
	if info.Size() == 0 {
		buf.WriteString(historyHeader)
		buf.WriteByte('\n')
	}
	if err := encodeSignature(&buf, sig); err != nil {
		return fmt.Errorf("append history: %w", err)
	}
	if _, err := io.WriteString(file, buf.String()); err != nil {
		return fmt.Errorf("append history: %w", err)
	}
	if f.sync {
		if err := file.Sync(); err != nil {
			return fmt.Errorf("append history: %w", err)
		}
	}
	return nil
}

// MemHistory is an in-memory HistoryStore. It serves tests and lets several
// simulated processes within one OS process share a history the way phone
// processes share the history file.
type MemHistory struct {
	mu   sync.Mutex
	sigs []*Signature
}

var _ HistoryStore = (*MemHistory)(nil)

// NewMemHistory returns an empty in-memory store.
func NewMemHistory() *MemHistory { return &MemHistory{} }

// Load returns copies of the stored signatures.
func (m *MemHistory) Load() ([]*Signature, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Signature, len(m.sigs))
	for i, s := range m.sigs {
		out[i] = &Signature{Kind: s.Kind, Pairs: clonePairs(s.Pairs)}
	}
	return out, nil
}

// Append stores a deep copy of sig.
func (m *MemHistory) Append(sig *Signature) error {
	if err := sig.Validate(); err != nil {
		return fmt.Errorf("append history: %w", err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sigs = append(m.sigs, &Signature{Kind: sig.Kind, Pairs: clonePairs(sig.Pairs)})
	return nil
}

// Len returns the number of stored signatures.
func (m *MemHistory) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sigs)
}
