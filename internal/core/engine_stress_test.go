package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// Sharded-engine stress: hammer Request/Acquired/Release from many
// goroutines — with per-lock real mutexes providing the ownership ordering
// the embedding runtime's monitors provide — while signatures install
// concurrently, repeatedly flipping positions from the fast path to the
// slow path mid-traffic (and triggering queue rebuilds under load). Run
// with -race; the invariants of invariants_test.go must survive.

// stressCore runs the workload against a core and returns it for
// inspection.
func stressCore(t *testing.T, serial bool, installer func(c *Core, stop <-chan struct{})) *Core {
	t.Helper()
	c, err := New(WithSerialEngine(serial))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })

	const (
		threads = 8
		locks   = 12
		opsPer  = 400
	)
	lockNodes := make([]*Node, locks)
	positions := make([]*Position, locks)
	realLocks := make([]sync.Mutex, locks)
	for i := range lockNodes {
		lockNodes[i] = c.NewLockNode(fmt.Sprintf("L%d", i))
		p, err := c.Intern(CallStack{{Class: "stress.Site", Method: "m", Line: i}})
		if err != nil {
			t.Fatal(err)
		}
		positions[i] = p
	}

	stop := make(chan struct{})
	var installWG sync.WaitGroup
	if installer != nil {
		installWG.Add(1)
		go func() {
			defer installWG.Done()
			installer(c, stop)
		}()
	}

	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*7919 + 1))
			th := c.NewThreadNode(fmt.Sprintf("T%d", w), nil)
			for op := 0; op < opsPer; op++ {
				// 1–2 distinct locks in ascending order: deadlock-free.
				k := 1 + rng.Intn(2)
				chosen := rng.Perm(locks)[:k]
				sortInts(chosen)
				for _, li := range chosen {
					if err := c.Request(th, lockNodes[li], positions[li]); err != nil {
						t.Errorf("request: %v", err)
						return
					}
					realLocks[li].Lock()
					c.Acquired(th, lockNodes[li])
				}
				for i := k - 1; i >= 0; i-- {
					li := chosen[i]
					c.Release(th, lockNodes[li])
					realLocks[li].Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	installWG.Wait()

	st := c.Stats()
	if st.DeadlocksDetected != 0 {
		t.Errorf("ordered stress detected %d deadlocks", st.DeadlocksDetected)
	}
	if st.Requests != st.Acquisitions || st.Acquisitions != st.Releases {
		t.Errorf("unbalanced counters: %d requests, %d acquisitions, %d releases",
			st.Requests, st.Acquisitions, st.Releases)
	}
	if st.Misuse != 0 {
		t.Errorf("misuse = %d", st.Misuse)
	}
	if ms := c.MemStats(); ms.QueueEntriesLive != 0 {
		t.Errorf("live queue entries after quiescence: %d", ms.QueueEntriesLive)
	}
	for i, l := range lockNodes {
		if l.owner.Load() != nil || l.acqPos != nil || l.acqEntry != nil {
			t.Errorf("lock %d not clean after quiescence", i)
		}
	}
	return c
}

// TestStressShardedEngine runs the plain ordered workload on the sharded
// engine with no signatures: every operation is fast-path eligible.
func TestStressShardedEngine(t *testing.T) {
	c := stressCore(t, false, nil)
	if st := c.Stats(); st.FastRequests == 0 {
		t.Error("sharded engine never took the fast path under stress")
	}
}

// TestStressConcurrentSignatureInstall interleaves the ordered workload
// with an installer that arms the workload's own positions one by one
// (never-instantiable hot+cold pairs, so no yield can block the ordered
// traffic) and re-installs duplicates. Every install flips a hot position
// from fast to slow path and rebuilds its queue from live RAG state.
func TestStressConcurrentSignatureInstall(t *testing.T) {
	installed := 0
	c := stressCore(t, false, func(c *Core, stop <-chan struct{}) {
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			li := i % 12
			sig := &Signature{Kind: DeadlockSig, Pairs: []SigPair{
				{
					Outer: CallStack{{Class: "stress.Site", Method: "m", Line: li}},
					Inner: CallStack{{Class: "stress.Site", Method: "m", Line: li}},
				},
				{
					Outer: CallStack{{Class: "stress.Cold", Method: "never", Line: i % 40}},
					Inner: CallStack{{Class: "stress.Cold", Method: "never", Line: i % 40}},
				},
			}}
			if _, _, err := c.AddSignature(sig); err != nil {
				t.Errorf("install: %v", err)
				return
			}
			installed++
		}
	})
	if installed == 0 {
		t.Fatal("installer never ran")
	}
	st := c.Stats()
	if st.Yields != 0 {
		t.Errorf("never-instantiable signatures caused %d yields", st.Yields)
	}
	// Traffic must have used both paths: fast before arming, slow after.
	if st.FastRequests == 0 {
		t.Error("no fast-path traffic before positions were armed")
	}
	if st.AvoidanceChecks == 0 {
		t.Error("no slow-path avoidance traffic after positions were armed")
	}
}

// TestStressSerialReference runs the same workload on the serial engine:
// the reference path must stay invariant-clean and never fast-path.
func TestStressSerialReference(t *testing.T) {
	c := stressCore(t, true, nil)
	if st := c.Stats(); st.FastRequests != 0 {
		t.Errorf("serial engine took %d fast requests", st.FastRequests)
	}
}

// TestStressInternSharding hammers the sharded intern table from many
// goroutines over an overlapping key space: each distinct stack must
// intern to exactly one Position.
func TestStressInternSharding(t *testing.T) {
	c, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const (
		goroutines = 8
		keys       = 300
	)
	results := make([][]*Position, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g] = make([]*Position, keys)
			rng := rand.New(rand.NewSource(int64(g)))
			for _, k := range rng.Perm(keys) {
				p, err := c.Intern(CallStack{{Class: "intern.C", Method: "m", Line: k}})
				if err != nil {
					t.Errorf("intern: %v", err)
					return
				}
				results[g][k] = p
			}
		}(g)
	}
	wg.Wait()
	for k := 0; k < keys; k++ {
		for g := 1; g < goroutines; g++ {
			if results[g][k] != results[0][k] {
				t.Fatalf("key %d interned to different positions in goroutines 0 and %d", k, g)
			}
		}
	}
	if n := c.PositionCount(); n != keys {
		t.Errorf("PositionCount = %d, want %d", n, keys)
	}
}

// TestStressYieldTrafficSharded exercises real yields under the sharded
// engine: two positions armed by an instantiable signature, several
// threads bouncing between them. Yields must eventually resolve (releases
// wake yielders; starvation handling force-resumes cycles) and the engine
// must finish clean.
func TestStressYieldTrafficSharded(t *testing.T) {
	c, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	mustAdd(t, c, sigOf(DeadlockSig, fr("yield.Site", "m", 0), fr("yield.Site", "m", 1)))

	const threads = 6
	lockNodes := make([]*Node, threads)
	realLocks := make([]sync.Mutex, threads)
	positions := make([]*Position, 2)
	for i := range positions {
		p, err := c.Intern(CallStack{{Class: "yield.Site", Method: "m", Line: i}})
		if err != nil {
			t.Fatal(err)
		}
		positions[i] = p
	}
	for i := range lockNodes {
		lockNodes[i] = c.NewLockNode(fmt.Sprintf("L%d", i))
	}

	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := c.NewThreadNode(fmt.Sprintf("T%d", w), nil)
			li := w
			for op := 0; op < 150; op++ {
				pos := positions[(w+op)%2]
				if err := c.Request(th, lockNodes[li], pos); err != nil {
					t.Errorf("request: %v", err)
					return
				}
				realLocks[li].Lock()
				c.Acquired(th, lockNodes[li])
				c.Release(th, lockNodes[li])
				realLocks[li].Unlock()
			}
		}(w)
	}
	wg.Wait()

	st := c.Stats()
	if st.Requests != st.Acquisitions || st.Acquisitions != st.Releases {
		t.Errorf("unbalanced counters: %+v", st)
	}
	if st.DeadlocksDetected != 0 {
		t.Errorf("detected %d deadlocks with per-thread private locks", st.DeadlocksDetected)
	}
	if ms := c.MemStats(); ms.QueueEntriesLive != 0 {
		t.Errorf("live entries after quiescence: %d", ms.QueueEntriesLive)
	}
}
