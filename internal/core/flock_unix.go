//go:build unix

package core

import (
	"os"
	"syscall"
)

// Advisory file locking for the shared on-flash history. Every process of
// the platform opens the same history file through its own descriptor, so
// the FileHistory mutex — which only serializes one handle — cannot stop
// two processes (or two handles in one process) from interleaving their
// appends: without a file lock, both can observe size==0 and write the
// header, leaving a second header line mid-file that strict loading
// rejects, or tear a sig..end block across a concurrent write. flock
// serializes per open file description, which covers both the
// cross-process and the multi-handle case.

// lockFile takes the advisory lock on f, shared for readers and exclusive
// for writers, blocking until it is granted.
func lockFile(f *os.File, exclusive bool) error {
	how := syscall.LOCK_SH
	if exclusive {
		how = syscall.LOCK_EX
	}
	return syscall.Flock(int(f.Fd()), how)
}

// unlockFile releases the advisory lock (also released implicitly when the
// descriptor closes; explicit release keeps the critical section tight).
func unlockFile(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
}
