package core

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
)

// raceSig builds a distinct valid deadlock signature per (writer, seq).
func raceSig(writer, seq int) *Signature {
	a := Frame{Class: fmt.Sprintf("com.race.W%d", writer), Method: "outer", Line: seq}
	b := Frame{Class: fmt.Sprintf("com.race.W%d", writer), Method: "inner", Line: seq + 100000}
	return &Signature{
		Kind: DeadlockSig,
		Pairs: []SigPair{
			{Outer: CallStack{a}, Inner: CallStack{a}},
			{Outer: CallStack{b}, Inner: CallStack{b}},
		},
	}
}

// TestFileHistoryConcurrentHandles is the regression test for the
// shared-history write race: several FileHistory handles on the same path
// (as separate platform processes would hold) appending concurrently must
// never tear sig..end blocks or write a second header. Before the advisory
// file lock, two handles could both observe an empty file and both emit
// the header, corrupting the file for strict loading.
func TestFileHistoryConcurrentHandles(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shared.hist")
	const writers = 8
	const perWriter = 32

	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fh := NewFileHistory(path) // one handle per simulated process
			<-start
			for i := 0; i < perWriter; i++ {
				if err := fh.Append(raceSig(w, i)); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	close(start)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("append: %v", err)
	}

	// Strict load: any torn block or duplicate header fails the decode.
	sigs, err := NewFileHistory(path).Load()
	if err != nil {
		t.Fatalf("strict load after concurrent appends: %v", err)
	}
	if len(sigs) != writers*perWriter {
		t.Fatalf("loaded %d signatures, want %d", len(sigs), writers*perWriter)
	}
	keys := make(map[string]bool, len(sigs))
	for _, s := range sigs {
		if keys[s.Key()] {
			t.Fatalf("duplicate signature %s", s.Key())
		}
		keys[s.Key()] = true
	}
}

// TestFileHistoryLockedLoadDuringAppend checks reader/writer coexistence:
// loads interleaved with appends from other handles always see a
// well-formed prefix.
func TestFileHistoryLockedLoadDuringAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mixed.hist")
	const n = 64
	done := make(chan struct{})
	go func() {
		defer close(done)
		fh := NewFileHistory(path)
		for i := 0; i < n; i++ {
			if err := fh.Append(raceSig(0, i)); err != nil {
				t.Errorf("append: %v", err)
				return
			}
		}
	}()
	reader := NewFileHistory(path)
	for {
		sigs, err := reader.Load()
		if err != nil && !errors.Is(err, ErrHistoryFormat) {
			t.Fatalf("load: %v", err)
		}
		if err != nil {
			t.Fatalf("torn read: %v", err)
		}
		select {
		case <-done:
			if len(sigs) > n {
				t.Fatalf("read %d signatures, max %d", len(sigs), n)
			}
			return
		default:
		}
	}
}
