package core

import (
	"errors"
	"fmt"
	"testing"
)

// Fast-path correctness: the sharded engine may skip detection-and-
// avoidance only when doing so is provably equivalent to the serial
// reference engine. These tests pin the conditions down.

// TestFastPathConditions table-drives the situations in which Request must
// (or must never) take the fast path.
func TestFastPathConditions(t *testing.T) {
	tests := []struct {
		name string
		// prepare arms the core and returns the (thread, lock, position)
		// for the probed Request.
		prepare  func(t *testing.T, h *harness) (*Node, *Node, *Position)
		wantFast bool
	}{
		{
			name: "unnamed position, unowned lock",
			prepare: func(t *testing.T, h *harness) (*Node, *Node, *Position) {
				return h.thread("t"), h.lock("l"), h.pos("Free", "m", 1)
			},
			wantFast: true,
		},
		{
			name: "position named by a deadlock signature",
			prepare: func(t *testing.T, h *harness) (*Node, *Node, *Position) {
				p := h.pos("Armed", "m", 1)
				mustAdd(t, h.c, sigOf(DeadlockSig, fr("test.Armed", "m", 1), fr("test.Cold", "x", 9)))
				return h.thread("t"), h.lock("l"), p
			},
			wantFast: false,
		},
		{
			name: "position named by a starvation signature",
			prepare: func(t *testing.T, h *harness) (*Node, *Node, *Position) {
				p := h.pos("Starved", "m", 1)
				h.arm("Starved", "m", 1)
				return h.thread("t"), h.lock("l"), p
			},
			wantFast: false,
		},
		{
			name: "contended lock",
			prepare: func(t *testing.T, h *harness) (*Node, *Node, *Position) {
				holder := h.thread("holder")
				l := h.lock("l")
				h.acquire(holder, l, h.pos("Other", "m", 7))
				return h.thread("t"), l, h.pos("Free", "m", 1)
			},
			wantFast: false,
		},
		{
			name: "serial engine always slow",
			prepare: func(t *testing.T, h *harness) (*Node, *Node, *Position) {
				return h.thread("t"), h.lock("l"), h.pos("Free", "m", 1)
			},
			wantFast: false,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var opts []Option
			if tc.name == "serial engine always slow" {
				opts = append(opts, WithSerialEngine(true))
			}
			h := newHarness(t, opts...)
			th, l, pos := tc.prepare(t, h)
			before := h.c.Stats().FastRequests
			if err := h.c.Request(th, l, pos); err != nil {
				t.Fatalf("Request: %v", err)
			}
			gotFast := h.c.Stats().FastRequests-before == 1
			if gotFast != tc.wantFast {
				t.Errorf("fast path taken = %v, want %v", gotFast, tc.wantFast)
			}
			h.c.Abort(th, l)
		})
	}
}

// TestSignatureInstallFlipsPositionToSlowPath: an armed position must stop
// fast-pathing the moment its signature installs, and the rebuilt queue
// must include acquisitions that happened while the position was still on
// the fast path.
func TestSignatureInstallFlipsPositionToSlowPath(t *testing.T) {
	h := newHarness(t)
	t1, t2 := h.thread("t1"), h.thread("t2")
	l1, l2 := h.lock("l1"), h.lock("l2")
	p := h.pos("Hot", "m", 1)

	// Fast-path acquisition; no queue entry is maintained.
	h.acquire(t1, l1, p)
	if st := h.c.Stats(); st.FastRequests != 1 {
		t.Fatalf("FastRequests = %d, want 1", st.FastRequests)
	}
	if p.occupants() != 0 {
		t.Fatalf("unnamed position has %d queue entries, want 0 (lazy queues)", p.occupants())
	}

	// Install a signature naming p: the queue must be rebuilt to include
	// t1's live holding.
	mustAdd(t, h.c, sigOf(DeadlockSig, fr("test.Hot", "m", 1), fr("test.Cold", "x", 9)))
	if !p.InHistory() {
		t.Fatal("position not armed by installation")
	}
	if p.occupants() != 1 {
		t.Fatalf("rebuilt queue has %d entries, want 1 (t1 holds l1 at p)", p.occupants())
	}

	// Subsequent requests at p go slow-path.
	before := h.c.Stats().FastRequests
	h.acquire(t2, l2, p)
	if h.c.Stats().FastRequests != before {
		t.Error("armed position took the fast path")
	}
	if p.occupants() != 2 {
		t.Fatalf("queue has %d entries, want 2", p.occupants())
	}

	// Releases (slow path now) must drain the rebuilt entries cleanly.
	h.release(t1, l1)
	h.release(t2, l2)
	if p.occupants() != 0 {
		t.Fatalf("queue has %d entries after releases, want 0", p.occupants())
	}
	if ms := h.c.MemStats(); ms.QueueEntriesLive != 0 {
		t.Errorf("live entries = %d, want 0", ms.QueueEntriesLive)
	}
}

// TestQueueRebuildIncludesInFlightRequests: an approved-but-not-acquired
// fast-path request must appear in the rebuilt queue too.
func TestQueueRebuildIncludesInFlightRequests(t *testing.T) {
	h := newHarness(t)
	t1 := h.thread("t1")
	l1 := h.lock("l1")
	p := h.pos("Hot", "m", 1)

	if err := h.c.Request(t1, l1, p); err != nil {
		t.Fatal(err)
	}
	if t1.reqEntry != nil {
		t.Fatal("fast-path approval must not take a queue entry")
	}
	mustAdd(t, h.c, sigOf(DeadlockSig, fr("test.Hot", "m", 1), fr("test.Cold", "x", 9)))
	if t1.reqEntry == nil {
		t.Fatal("rebuild must attach an entry to the in-flight request")
	}
	if p.occupants() != 1 {
		t.Fatalf("rebuilt queue has %d entries, want 1", p.occupants())
	}
	// The entry must flow through Acquired/Release like a slow-path one.
	h.c.Acquired(t1, l1)
	if l1.acqEntry == nil {
		t.Fatal("entry must transfer to the lock on Acquired")
	}
	h.release(t1, l1)
	if p.occupants() != 0 {
		t.Errorf("queue has %d entries after release, want 0", p.occupants())
	}
}

// engineScript is a deterministic single-goroutine schedule replayed on
// both engines; every step's outcome must be identical.
type engineStep struct {
	op     string // "acquire", "release", "request", "abort", "addsig"
	thread int
	lock   int
	pos    int
	sig    *Signature
	// wantErr is matched with errors.Is against the step's error (nil
	// means the step must succeed).
	wantErr error
}

// runEngineScript replays a script and returns the final stats.
func runEngineScript(t *testing.T, serial bool, steps []engineStep) Stats {
	t.Helper()
	h := newHarness(t, WithSerialEngine(serial), WithPolicy(PolicyFail))
	threads := map[int]*Node{}
	locks := map[int]*Node{}
	positions := map[int]*Position{}
	node := func(i int) *Node {
		if threads[i] == nil {
			threads[i] = h.thread(fmt.Sprintf("t%d", i))
		}
		return threads[i]
	}
	lock := func(i int) *Node {
		if locks[i] == nil {
			locks[i] = h.lock(fmt.Sprintf("l%d", i))
		}
		return locks[i]
	}
	pos := func(i int) *Position {
		if positions[i] == nil {
			positions[i] = h.pos("Eq", "m", i)
		}
		return positions[i]
	}
	for si, st := range steps {
		var err error
		switch st.op {
		case "request":
			err = h.c.Request(node(st.thread), lock(st.lock), pos(st.pos))
		case "acquire":
			if err = h.c.Request(node(st.thread), lock(st.lock), pos(st.pos)); err == nil {
				h.c.Acquired(node(st.thread), lock(st.lock))
			}
		case "release":
			h.c.Release(node(st.thread), lock(st.lock))
		case "abort":
			h.c.Abort(node(st.thread), lock(st.lock))
		case "addsig":
			_, _, err = h.c.AddSignature(st.sig)
		default:
			t.Fatalf("step %d: unknown op %q", si, st.op)
		}
		if st.wantErr == nil {
			if err != nil {
				t.Fatalf("step %d (%s): unexpected error %v (serial=%v)", si, st.op, err, serial)
			}
		} else if !errors.Is(err, st.wantErr) {
			var de *DeadlockError
			if !(errors.As(err, &de) && errors.As(st.wantErr, &de)) {
				t.Fatalf("step %d (%s): error = %v, want %v (serial=%v)", si, st.op, err, st.wantErr, serial)
			}
		}
	}
	return h.c.Stats()
}

// TestEngineEquivalence replays deterministic schedules — including a real
// deadlock and suppressed-yield traffic — on the serial reference engine
// and the sharded engine, and requires identical avoidance and detection
// decisions.
func TestEngineEquivalence(t *testing.T) {
	deadlockErr := &DeadlockError{}
	scripts := map[string][]engineStep{
		"ordered no deadlock": {
			{op: "acquire", thread: 1, lock: 1, pos: 1},
			{op: "acquire", thread: 1, lock: 2, pos: 2},
			{op: "release", thread: 1, lock: 2},
			{op: "release", thread: 1, lock: 1},
			{op: "acquire", thread: 2, lock: 1, pos: 1},
			{op: "release", thread: 2, lock: 1},
		},
		"real deadlock detected": {
			{op: "acquire", thread: 1, lock: 1, pos: 1},
			{op: "acquire", thread: 2, lock: 2, pos: 2},
			{op: "request", thread: 1, lock: 2, pos: 3},
			// t2 requesting l1 completes the cycle: PolicyFail errors.
			{op: "request", thread: 2, lock: 1, pos: 4, wantErr: deadlockErr},
			{op: "abort", thread: 1, lock: 2},
			{op: "release", thread: 2, lock: 2},
			{op: "release", thread: 1, lock: 1},
		},
		"armed but never instantiable": {
			{op: "addsig", sig: sigOf(DeadlockSig, fr("test.Eq", "m", 1), fr("test.Never", "x", 1))},
			{op: "acquire", thread: 1, lock: 1, pos: 1},
			{op: "acquire", thread: 2, lock: 2, pos: 1},
			{op: "release", thread: 2, lock: 2},
			{op: "release", thread: 1, lock: 1},
			{op: "acquire", thread: 1, lock: 1, pos: 2},
			{op: "release", thread: 1, lock: 1},
		},
		"suppressed yield proceeds": {
			// A starvation signature over {p1, p2} suppresses the yield
			// that the deadlock signature over the same positions would
			// otherwise force, so the single-goroutine script cannot hang.
			{op: "addsig", sig: sigOf(DeadlockSig, fr("test.Eq", "m", 1), fr("test.Eq", "m", 2))},
			{op: "addsig", sig: sigOf(StarvationSig, fr("test.Eq", "m", 1), fr("test.Eq", "m", 2))},
			{op: "acquire", thread: 1, lock: 1, pos: 1},
			// t2's request at p2 makes sig{p1,p2} instantiable; the
			// starvation signature suppresses the yield and it proceeds.
			{op: "acquire", thread: 2, lock: 2, pos: 2},
			{op: "release", thread: 2, lock: 2},
			{op: "release", thread: 1, lock: 1},
		},
	}
	for name, script := range scripts {
		t.Run(name, func(t *testing.T) {
			serial := runEngineScript(t, true, script)
			sharded := runEngineScript(t, false, script)

			// The serial engine must never fast-path; the sharded engine
			// must agree with it on every decision-relevant counter.
			if serial.FastRequests != 0 {
				t.Errorf("serial engine took %d fast requests", serial.FastRequests)
			}
			type decision struct {
				requests, acquisitions, releases, aborts uint64
				deadlocks, duplicates                    uint64
				yields, suppressed, starvations          uint64
				instantiations                           uint64
				misuse                                   uint64
			}
			d := func(s Stats) decision {
				return decision{
					requests: s.Requests, acquisitions: s.Acquisitions,
					releases: s.Releases, aborts: s.Aborts,
					deadlocks: s.DeadlocksDetected, duplicates: s.DuplicateDeadlocks,
					yields: s.Yields, suppressed: s.SuppressedYields,
					starvations: s.Starvations, instantiations: s.InstantiationsFound,
					misuse: s.Misuse,
				}
			}
			if d(serial) != d(sharded) {
				t.Errorf("engines disagree:\nserial : %+v\nsharded: %+v", d(serial), d(sharded))
			}
		})
	}
}
