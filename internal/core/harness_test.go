package core

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// harness wires a Core to convenience constructors for RAG scenario tests.
type harness struct {
	t *testing.T
	c *Core
}

func newHarness(t *testing.T, opts ...Option) *harness {
	t.Helper()
	c, err := New(opts...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return &harness{t: t, c: c}
}

// thread creates a thread node with a fixed informational stack.
func (h *harness) thread(name string) *Node {
	stack := CallStack{{Class: "test.Threads", Method: name, Line: 1}}
	return h.c.NewThreadNode(name, func() CallStack { return stack })
}

func (h *harness) lock(name string) *Node {
	return h.c.NewLockNode(name)
}

// pos interns a depth-1 position "test.<class>.<method>:<line>".
func (h *harness) pos(class, method string, line int) *Position {
	h.t.Helper()
	p, err := h.c.Intern(CallStack{{Class: "test." + class, Method: method, Line: line}})
	if err != nil {
		h.t.Fatalf("Intern: %v", err)
	}
	return p
}

// arm marks the position for the given frame as signature-named, so the
// queue-maintaining slow path runs, without enabling any avoidance:
// a starvation signature is never matched by findInstantiation, it only
// suppresses yields that would otherwise happen.
func (h *harness) arm(class, method string, line int) {
	h.t.Helper()
	f := fr("test."+class, method, line)
	mustAdd(h.t, h.c, &Signature{Kind: StarvationSig, Pairs: []SigPair{
		{Outer: CallStack{f}, Inner: CallStack{f}},
	}})
}

// acquire performs the full Request+Acquired sequence, failing the test on
// error.
func (h *harness) acquire(t, l *Node, pos *Position) {
	h.t.Helper()
	if err := h.c.Request(t, l, pos); err != nil {
		h.t.Fatalf("Request(%s,%s): %v", t, l, err)
	}
	h.c.Acquired(t, l)
}

// release releases a held lock.
func (h *harness) release(t, l *Node) {
	h.t.Helper()
	h.c.Release(t, l)
}

// stack builds a call stack from "Class.Method:Line"-style triples.
func stackOf(frames ...Frame) CallStack { return frames }

func fr(class, method string, line int) Frame {
	return Frame{Class: class, Method: method, Line: line}
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// eventRecorder drains a core's event channel into an inspectable log.
type eventRecorder struct {
	mu     sync.Mutex
	events []Event
	done   chan struct{}
}

// recordEvents starts draining c's events until the core is closed.
func recordEvents(t *testing.T, c *Core) *eventRecorder {
	t.Helper()
	r := &eventRecorder{done: make(chan struct{})}
	go func() {
		defer close(r.done)
		for ev := range c.Events() {
			r.mu.Lock()
			r.events = append(r.events, ev)
			r.mu.Unlock()
		}
	}()
	return r
}

// count returns how many recorded events have the given kind.
func (r *eventRecorder) count(kind EventKind) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, ev := range r.events {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

// find returns the first event of the given kind, if any.
func (r *eventRecorder) find(kind EventKind) (Event, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, ev := range r.events {
		if ev.Kind == kind {
			return ev, true
		}
	}
	return Event{}, false
}

// sigOf builds a deadlock signature over depth-1 outer frames.
func sigOf(kind SigKind, outers ...Frame) *Signature {
	sig := &Signature{Kind: kind}
	for _, f := range outers {
		sig.Pairs = append(sig.Pairs, SigPair{
			Outer: CallStack{f},
			Inner: CallStack{f},
		})
	}
	return sig
}

// mustAdd installs a signature, failing the test on error.
func mustAdd(t *testing.T, c *Core, sig *Signature) SignatureInfo {
	t.Helper()
	info, _, err := c.AddSignature(sig)
	if err != nil {
		t.Fatalf("AddSignature: %v", err)
	}
	return info
}

// uniqueFrame generates distinct frames for table-driven tests.
func uniqueFrame(i int) Frame {
	return Frame{Class: "gen.C" + fmt.Sprint(i), Method: "m", Line: i}
}
