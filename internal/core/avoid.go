package core

import (
	"sort"
	"sync/atomic"
	"time"
)

// Avoidance. Before a thread is allowed to wait for a lock at position
// pos, the core "pretends" the approval and checks whether any deadlock
// signature could then be instantiated: a signature with outer positions
// p1..pn is instantiable iff there exist *distinct* threads t1..tn that
// hold, or are allowed to wait for, locks at p1..pn (§2.2). While an
// instantiation is possible, the thread yields on the signature's
// condition variable; releases of locks held at in-history positions wake
// it to re-check.
//
// Starvation signatures recorded by starvation.go act as yield-suppression
// templates: if the pattern (requesting position + witness positions) of a
// prospective yield matches a starvation signature, the yield previously
// led to an avoidance-induced deadlock, so the thread proceeds instead —
// "Dimmunix will subsequently avoid entering the same starvation condition
// again" (§2.2).

// avoidLocked runs the avoidance loop for t requesting at pos. It returns
// whether the thread yielded at least once. Caller must hold c.mu
// exclusively; the lock is released while the thread is suspended on a
// signature's condition variable. The yielder count mirrors the yielders
// map atomically so the fast path can gate on "nothing yields" without
// the engine lock.
func (c *Core) avoidLocked(t *Node, pos *Position) (yielded bool, err error) {
	for {
		if c.killed.Load() {
			return yielded, ErrCoreClosed
		}
		if t.forceResume {
			return yielded, nil
		}
		sig, witnesses := c.findInstantiationLocked(t, pos)
		if sig == nil {
			return yielded, nil
		}
		atomic.AddUint64(&c.stats.InstantiationsFound, 1)
		atomic.AddUint64(&sig.matches, 1)

		if c.yieldSuppressedLocked(pos, witnesses) {
			atomic.AddUint64(&c.stats.SuppressedYields, 1)
			return yielded, nil
		}
		// Would this yield complete an avoidance-induced deadlock right
		// away? If so, record the starvation signature and proceed.
		if c.wouldStarveLocked(t, witnesses) {
			c.recordStarvationLocked(t, pos, witnesses)
			return yielded, nil
		}

		yielded = true
		rec := &yieldRecord{sig: sig, witnesses: witnesses, pos: pos, since: time.Now()}
		t.yield = rec
		c.yielders[t] = rec
		c.yielderCount.Add(1)
		atomic.AddUint64(&c.stats.Yields, 1)
		c.emit(Event{
			Kind:       EventYield,
			Sig:        sig.snapshot(),
			ThreadID:   t.id,
			ThreadName: t.name,
			Pos:        pos.key,
		})
		sig.cond.Wait()
		t.yield = nil
		delete(c.yielders, t)
		c.yielderCount.Add(-1)
	}
}

// findInstantiationLocked searches the deadlock signatures containing pos
// for one that would be instantiable if t were allowed to wait at pos. It
// returns the first such signature and the witness assignment (matched
// thread → matched position, excluding t), or (nil, nil).
//
// Only signatures containing pos need checking: approvals are the only
// transitions that can create an instantiation, and the core maintains the
// invariant that no instantiation exists after each approval, so a new one
// must involve the newly pretended (t, pos).
func (c *Core) findInstantiationLocked(t *Node, pos *Position) (*Signature, map[*Node]*Position) {
	for _, sig := range pos.sigs {
		if sig.Kind != DeadlockSig {
			continue
		}
		atomic.AddUint64(&c.stats.AvoidanceChecks, 1)
		if assigned := c.matchSignatureLocked(sig, t, pos); assigned != nil {
			// A successful match is rare (it precedes a yield); only then
			// materialize the witness map.
			witnesses := make(map[*Node]*Position, len(assigned))
			for i, th := range assigned {
				if th != nil && th != t {
					witnesses[th] = sig.slots[i]
				}
			}
			return sig, witnesses
		}
	}
	return nil, nil
}

// matchSignatureLocked attempts to find distinct threads occupying all of
// sig's outer positions, with t pretended present at pos. On success it
// returns the per-slot assignment (aliasing the core's scratch buffer — a
// zero-allocation hot path, since this runs on every monitorenter at an
// in-history position); on failure nil. Signatures are tiny (2–4
// positions), so exact backtracking search is cheap.
func (c *Core) matchSignatureLocked(sig *Signature, t *Node, pos *Position) []*Node {
	n := len(sig.slots)
	if cap(c.matchScratch) < n {
		c.matchScratch = make([]*Node, n)
	}
	assigned := c.matchScratch[:n]
	for i := range assigned {
		assigned[i] = nil
	}
	if !matchSlot(sig.slots, 0, assigned, t, pos) {
		return nil
	}
	return assigned
}

// assignedContains reports whether th already fills one of the slots.
func assignedContains(assigned []*Node, th *Node) bool {
	for _, x := range assigned {
		if x == th {
			return true
		}
	}
	return false
}

// matchSlot assigns a distinct thread to slots[i:] given the threads
// already assigned. The pretended candidate t is tried first for slots at
// pos: any new instantiation must involve it.
func matchSlot(slots []*Position, i int, assigned []*Node, t *Node, pos *Position) bool {
	if i == len(slots) {
		return true
	}
	p := slots[i]
	if p == pos && !assignedContains(assigned, t) {
		assigned[i] = t
		if matchSlot(slots, i+1, assigned, t, pos) {
			return true
		}
		assigned[i] = nil
	}
	for e := p.queue.head; e != nil; e = e.next {
		th := e.thread
		if assignedContains(assigned, th) {
			continue
		}
		assigned[i] = th
		if matchSlot(slots, i+1, assigned, t, pos) {
			return true
		}
		assigned[i] = nil
	}
	return false
}

// yieldSuppressedLocked reports whether the prospective yield state —
// t requesting at pos with the given witnesses — matches a recorded
// starvation signature, in which case yielding is known to starve and the
// thread must proceed instead.
func (c *Core) yieldSuppressedLocked(pos *Position, witnesses map[*Node]*Position) bool {
	hasStarvation := false
	for _, s := range pos.sigs {
		if s.Kind == StarvationSig {
			hasStarvation = true
			break
		}
	}
	if !hasStarvation {
		return false
	}
	// Multiset of positions in the prospective yield state.
	state := make(map[*Position]int, len(witnesses)+1)
	state[pos]++
	for _, wpos := range witnesses {
		state[wpos]++
	}
	for _, s := range pos.sigs {
		if s.Kind != StarvationSig {
			continue
		}
		if slotsSubset(s.slots, state) {
			return true
		}
	}
	return false
}

// slotsSubset reports whether the multiset of slots is contained in state.
func slotsSubset(slots []*Position, state map[*Position]int) bool {
	remaining := make(map[*Position]int, len(state))
	for p, n := range state {
		remaining[p] = n
	}
	for _, p := range slots {
		if remaining[p] == 0 {
			return false
		}
		remaining[p]--
	}
	return true
}

// sortedWitnesses returns the witness map as a deterministic slice ordered
// by thread id, for stable signature construction.
func sortedWitnesses(witnesses map[*Node]*Position) []*Node {
	nodes := make([]*Node, 0, len(witnesses))
	for w := range witnesses {
		nodes = append(nodes, w)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].id < nodes[j].id })
	return nodes
}
