package core

import "sync/atomic"

// Position is the interned representation of an outer call stack: the
// program location of a monitorenter statement (struct Position in the
// paper). Exactly one Position object exists per distinct call-stack key in
// a given Core (one per process), allocated by the positions intern table
// at first use — "Dimmunix allocates a unique Position object for each call
// stack of a synchronization operation" (§4).
//
// Each Position carries the set of threads that currently hold, or are
// allowed by Dimmunix to wait for, locks acquired at this location. That
// set drives the signature-instantiation check. Following §4, the set is a
// linked queue whose entries are recycled through a second, free queue to
// minimize allocations.
//
// Mutable fields are guarded by the owning Core's engine lock (held
// exclusively); inHistory is atomic so the fast path can read it
// lock-free (see the lock-order comment in core.go).
type Position struct {
	// key is the canonical encoding of stack (CallStack.Key).
	key string
	// stack is the interned outer call stack, truncated to the configured
	// outer depth. Owned by the Position (cloned at intern time).
	stack CallStack
	// inHistory is true when at least one history signature contains this
	// position; only then can an acquisition here participate in an
	// instantiation. It is the fast-path gate: a request at a position
	// outside every signature needs no avoidance, and a release there
	// wakes no yielder. Set (never cleared) at signature install time,
	// under the exclusive engine lock.
	inHistory atomic.Bool
	// sigs is the position→candidate-signature index: the history
	// signatures whose outer positions include this position, maintained
	// at install time. Avoidance at this position only examines these.
	sigs []*Signature
	// queue holds one entry per (thread, acquisition) that is currently
	// holding or approved to wait at this position. The paper's main
	// queue, maintained lazily: only while the position is in-history (the
	// only time matching consults it); rebuilt from RAG state when the
	// position first becomes named by a signature. Guarded by the
	// exclusive engine lock.
	queue entryList
	// free is the recycling list for queue entries. The paper's second
	// queue: "whenever a thread t needs to be added to the main queue and
	// the second queue is non-empty, Dimmunix pops an element from the
	// second queue" (§4).
	free entryList
	// seq is a stable intern order index, used for deterministic iteration
	// in diagnostics.
	seq int64
}

// Key returns the canonical string encoding of the position's call stack.
func (p *Position) Key() string { return p.key }

// Stack returns the interned outer call stack. The caller must not modify
// the returned slice.
func (p *Position) Stack() CallStack { return p.stack }

// InHistory reports whether any known signature contains this position.
func (p *Position) InHistory() bool { return p.inHistory.Load() }

// entry is a node in a Position's thread queue. One entry exists per
// in-flight or completed acquisition at the position; a thread holding two
// locks acquired at the same position owns two entries there.
type entry struct {
	thread     *Node
	next, prev *entry
}

// entryList is an intrusive doubly linked list of entries with O(1)
// insertion and removal. The zero value is an empty list.
type entryList struct {
	head, tail *entry
	size       int
}

// pushBack appends e to the list.
func (l *entryList) pushBack(e *entry) {
	e.next = nil
	e.prev = l.tail
	if l.tail != nil {
		l.tail.next = e
	} else {
		l.head = e
	}
	l.tail = e
	l.size++
}

// remove unlinks e from the list. e must be an element of the list.
func (l *entryList) remove(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.next, e.prev = nil, nil
	l.size--
}

// popFront removes and returns the first entry, or nil if the list is
// empty.
func (l *entryList) popFront() *entry {
	e := l.head
	if e == nil {
		return nil
	}
	l.remove(e)
	return e
}

// len returns the number of entries in the list.
func (l *entryList) len() int { return l.size }

// takeEntry obtains a queue entry for t at position p, recycling from the
// free list when possible (the §4 allocation-avoidance scheme). When the
// Core is configured with queue reuse disabled (ablation A2), entries are
// always freshly allocated.
func (p *Position) takeEntry(t *Node, reuse bool) *entry {
	if reuse {
		if e := p.free.popFront(); e != nil {
			e.thread = t
			p.queue.pushBack(e)
			return e
		}
	}
	e := &entry{thread: t}
	p.queue.pushBack(e)
	return e
}

// releaseEntry removes e from the main queue and recycles it onto the free
// list (or drops it when reuse is disabled).
func (p *Position) releaseEntry(e *entry, reuse bool) {
	p.queue.remove(e)
	e.thread = nil
	if reuse {
		p.free.pushBack(e)
	}
}

// distinctThreads appends to dst the distinct threads present in the
// position's queue and returns the extended slice. A thread holding several
// locks acquired here appears once: a single thread cannot deadlock with
// itself, so instantiation matching is over distinct threads.
func (p *Position) distinctThreads(dst []*Node) []*Node {
	for e := p.queue.head; e != nil; e = e.next {
		seen := false
		for _, t := range dst {
			if t == e.thread {
				seen = true
				break
			}
		}
		if !seen {
			dst = append(dst, e.thread)
		}
	}
	return dst
}

// occupants returns the number of entries (not distinct threads) currently
// in the queue. Used by stats and tests.
func (p *Position) occupants() int { return p.queue.len() }
