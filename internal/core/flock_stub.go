//go:build !unix

package core

import "os"

// On platforms without flock the advisory history lock degrades to a
// no-op: the per-handle mutex still serializes appends within one handle,
// and platforms that need true multi-writer safety should route writes
// through the immunity service (the single-writer path).

func lockFile(*os.File, bool) error { return nil }

func unlockFile(*os.File) error { return nil }
