package core

import "testing"

func TestEntryListBasics(t *testing.T) {
	var l entryList
	if l.len() != 0 || l.popFront() != nil {
		t.Fatal("zero-value list must be empty")
	}
	a, b, c := &entry{}, &entry{}, &entry{}
	l.pushBack(a)
	l.pushBack(b)
	l.pushBack(c)
	if l.len() != 3 {
		t.Fatalf("len = %d, want 3", l.len())
	}
	l.remove(b) // middle removal
	if l.len() != 2 || l.head != a || l.tail != c || a.next != c || c.prev != a {
		t.Fatal("middle removal corrupted links")
	}
	l.remove(a) // head removal
	if l.head != c || c.prev != nil {
		t.Fatal("head removal corrupted links")
	}
	l.remove(c) // tail == head removal
	if l.len() != 0 || l.head != nil || l.tail != nil {
		t.Fatal("final removal must empty the list")
	}
}

func TestEntryListPopFrontOrder(t *testing.T) {
	var l entryList
	n1, n2 := &Node{id: 1}, &Node{id: 2}
	l.pushBack(&entry{thread: n1})
	l.pushBack(&entry{thread: n2})
	if e := l.popFront(); e.thread != n1 {
		t.Error("popFront must be FIFO")
	}
	if e := l.popFront(); e.thread != n2 {
		t.Error("popFront must be FIFO")
	}
}

func TestPositionEntryReuse(t *testing.T) {
	p := &Position{key: "k"}
	n := &Node{id: 1}

	e1 := p.takeEntry(n, true)
	if p.queue.len() != 1 || p.free.len() != 0 {
		t.Fatal("takeEntry should enqueue")
	}
	p.releaseEntry(e1, true)
	if p.queue.len() != 0 || p.free.len() != 1 {
		t.Fatal("releaseEntry should recycle onto the free list")
	}
	if e1.thread != nil {
		t.Error("recycled entry must not pin the thread")
	}
	e2 := p.takeEntry(n, true)
	if e2 != e1 {
		t.Error("takeEntry should reuse the recycled entry (the paper's second queue)")
	}
	if p.free.len() != 0 {
		t.Error("reused entry must leave the free list")
	}
}

func TestPositionEntryReuseDisabled(t *testing.T) {
	p := &Position{key: "k"}
	n := &Node{id: 1}
	e1 := p.takeEntry(n, false)
	p.releaseEntry(e1, false)
	if p.free.len() != 0 {
		t.Fatal("reuse disabled: free list must stay empty")
	}
	e2 := p.takeEntry(n, false)
	if e2 == e1 {
		t.Error("reuse disabled: entries must be freshly allocated")
	}
}

func TestPositionDistinctThreads(t *testing.T) {
	p := &Position{key: "k"}
	n1, n2 := &Node{id: 1}, &Node{id: 2}
	// n1 holds two locks acquired at this position: two entries, one thread.
	p.takeEntry(n1, true)
	p.takeEntry(n1, true)
	p.takeEntry(n2, true)
	got := p.distinctThreads(nil)
	if len(got) != 2 {
		t.Fatalf("distinctThreads = %d threads, want 2 (duplicates collapse)", len(got))
	}
	if p.occupants() != 3 {
		t.Fatalf("occupants = %d, want 3", p.occupants())
	}
}

func TestInternDeduplicates(t *testing.T) {
	h := newHarness(t)
	p1 := h.pos("C", "m", 1)
	p2 := h.pos("C", "m", 1)
	p3 := h.pos("C", "m", 2)
	if p1 != p2 {
		t.Error("identical stacks must intern to the same Position")
	}
	if p1 == p3 {
		t.Error("different stacks must intern to different Positions")
	}
	if h.c.PositionCount() != 2 {
		t.Errorf("PositionCount = %d, want 2", h.c.PositionCount())
	}
}

func TestInternTruncatesToOuterDepth(t *testing.T) {
	h := newHarness(t, WithOuterDepth(1))
	deep := stackOf(fr("a.B", "m", 1), fr("c.D", "n", 2))
	shallow := stackOf(fr("a.B", "m", 1))
	p1, err := h.c.Intern(deep)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := h.c.Intern(shallow)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("depth-1 interning must collapse stacks with the same top frame")
	}

	h2 := newHarness(t, WithOuterDepth(2))
	q1, err := h2.c.Intern(deep)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := h2.c.Intern(shallow)
	if err != nil {
		t.Fatal(err)
	}
	if q1 == q2 {
		t.Error("depth-2 interning must distinguish stacks differing below the top")
	}
}

func TestInternEmptyStack(t *testing.T) {
	h := newHarness(t)
	if _, err := h.c.Intern(nil); err == nil {
		t.Error("interning an empty stack must fail")
	}
}

func TestInternClonesStack(t *testing.T) {
	h := newHarness(t)
	buf := stackOf(fr("a.B", "m", 1))
	p, err := h.c.Intern(buf)
	if err != nil {
		t.Fatal(err)
	}
	buf[0].Line = 999 // caller reuses its capture buffer
	if p.Stack()[0].Line == 999 {
		t.Error("Position must own a copy of the interned stack")
	}
}
