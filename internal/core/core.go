// Package core implements Dimmunix deadlock immunity: deadlock detection
// over a resource allocation graph, deadlock signatures, a persistent
// signature history, and avoidance of execution flows that match previously
// recorded signatures.
//
// One Core instance exists per (simulated) process — platform-wide
// immunity runs Dimmunix in user space inside every application process
// (§3.1 of the paper), so state is process-local and isolated.
//
// The embedding runtime (a synchronization library, here internal/vm's
// Dalvik-like monitors) drives the core through three interception points,
// mirroring the paper's integration with lockMonitor/unlockMonitor:
//
//   - Request, before a monitorenter: runs detection, then blocks the
//     caller while any history signature could be instantiated.
//   - Acquired, right after a monitorenter succeeds.
//   - Release, right before a monitorexit.
//
// For thread safety the core serializes these entry points with one global
// (per-process) mutex, as the paper does: "Dimmunix uses a global lock
// within these methods" (§4); the calls themselves are cheap.
package core

import (
	"fmt"
	"sync"
	"time"
)

// Core is one per-process Dimmunix instance.
type Core struct {
	mu  sync.Mutex
	cfg Config

	// positions is the per-process intern table mapping call-stack keys to
	// unique Position objects (the paper's global positions map).
	positions map[string]*Position
	posSeq    int

	// history is the installed signature list; sigKeys deduplicates by
	// Signature.Key.
	history []*Signature
	sigKeys map[string]*Signature

	// yielders tracks threads currently suspended by avoidance.
	yielders map[*Node]*yieldRecord

	nodeCount        uint64
	entriesAllocated uint64

	// matchScratch is the reusable slot-assignment buffer for signature
	// matching (safe: matching always runs under mu).
	matchScratch []*Node

	stats Stats

	events       chan Event
	eventsClosed bool
	killed       bool

	watchdogStop chan struct{}
	watchdogWG   sync.WaitGroup
}

// New creates a Core with the given options applied over DefaultConfig.
// If a history store is configured, all persisted signatures are loaded
// and installed before New returns, so avoidance is armed from the first
// monitorenter — this is the paper's initDimmunix, called when Zygote
// forks a new process.
func New(opts ...Option) (*Core, error) {
	cfg := DefaultConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &Core{
		cfg:       cfg,
		positions: make(map[string]*Position),
		sigKeys:   make(map[string]*Signature),
		yielders:  make(map[*Node]*yieldRecord),
		events:    make(chan Event, cfg.EventBuffer),
	}
	if cfg.Store != nil {
		sigs, err := cfg.Store.Load()
		if err != nil {
			return nil, fmt.Errorf("init dimmunix: %w", err)
		}
		c.mu.Lock()
		for _, s := range sigs {
			installed, fresh, err := c.installSignatureLocked(s, false)
			if err != nil {
				c.mu.Unlock()
				return nil, fmt.Errorf("init dimmunix: install signature: %w", err)
			}
			if fresh {
				c.stats.SignaturesLoaded++
				c.emitLocked(Event{Kind: EventSignatureLoaded, Sig: installed.snapshot()})
			}
		}
		c.mu.Unlock()
	}
	if cfg.WatchdogPeriod > 0 {
		c.watchdogStop = make(chan struct{})
		c.watchdogWG.Add(1)
		go c.watchdogLoop()
	}
	return c, nil
}

// Config returns a copy of the effective configuration.
func (c *Core) Config() Config { return c.cfg }

// Events returns the event stream. The channel is closed by Close. Events
// are dropped (never blocking the synchronization path) if the consumer
// falls behind.
func (c *Core) Events() <-chan Event { return c.events }

// Close shuts the core down: the watchdog stops, all threads suspended in
// avoidance are woken with ErrCoreClosed, and the event channel is closed.
// Close is idempotent.
func (c *Core) Close() error {
	c.mu.Lock()
	if c.killed {
		c.mu.Unlock()
		return nil
	}
	c.killed = true
	// Wake every yielder so blocked Requests can return ErrCoreClosed.
	for _, s := range c.history {
		s.cond.Broadcast()
	}
	c.mu.Unlock()

	if c.watchdogStop != nil {
		close(c.watchdogStop)
		c.watchdogWG.Wait()
	}

	c.mu.Lock()
	c.eventsClosed = true
	close(c.events)
	c.mu.Unlock()
	return nil
}

// NewThreadNode creates the RAG node for a thread. stackFn, which may be
// nil, captures the thread's current full call stack for the informational
// inner stacks of signatures; it must be safe to call from any goroutine.
// The paper embeds this node in Dalvik's Thread struct ("Node node").
func (c *Core) NewThreadNode(name string, stackFn func() CallStack) *Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nodeCount++
	return &Node{kind: ThreadNode, id: c.nodeCount, name: name, stackFn: stackFn}
}

// NewLockNode creates the RAG node for a lock (monitor). The paper embeds
// this node in Dalvik's Monitor struct.
func (c *Core) NewLockNode(name string) *Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nodeCount++
	return &Node{kind: LockNode, id: c.nodeCount, name: name}
}

// Intern returns the unique Position for the given outer call stack,
// truncated to the configured outer depth. The stack is cloned when a new
// Position is created, so callers may reuse their capture buffers (the
// paper's Thread.stackBuffer).
func (c *Core) Intern(stack CallStack) (*Position, error) {
	if len(stack) == 0 {
		return nil, fmt.Errorf("intern: empty call stack")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.internLocked(stack), nil
}

// internLocked is Intern under c.mu.
func (c *Core) internLocked(stack CallStack) *Position {
	stack = stack.Truncate(c.cfg.OuterDepth)
	key := stack.Key()
	if p, ok := c.positions[key]; ok {
		return p
	}
	p := &Position{key: key, stack: stack.Clone(), seq: c.posSeq}
	c.posSeq++
	c.positions[key] = p
	return p
}

// Request implements the pre-monitorenter interception. t is about to
// request lock l with outer call stack position pos. Request:
//
//  1. Runs deadlock detection: if granting the request would complete a
//     RAG cycle, the deadlock's signature is recorded (and persisted), and
//     Request either proceeds (PolicyFreeze — the deadlock happens, as on
//     an unmodified phone it would, but now with an antibody saved) or
//     returns *DeadlockError (PolicyFail).
//  2. Runs avoidance: while the pretended approval would make any history
//     signature instantiable, the calling goroutine is suspended on that
//     signature's condition variable (§2.2).
//  3. Approves: t is registered in pos's thread queue ("holds or is
//     allowed to wait for a lock at pos") and the request edge t→l is
//     added to the RAG.
//
// On success the caller must proceed to block on the real lock and then
// call Acquired; if the caller gives up instead it must call Abort.
func (c *Core) Request(t, l *Node, pos *Position) error {
	if err := checkArgs(t, l); err != nil {
		return err
	}
	if pos == nil {
		return fmt.Errorf("request: nil position")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.killed {
		return ErrCoreClosed
	}
	c.stats.Requests++
	if t.reqLock != nil {
		// A second Request without Acquired/Abort: tolerate but count.
		c.stats.Misuse++
	}

	inCycle := false
	if c.cfg.Detection {
		if cycle := c.findCycleLocked(t, l); cycle != nil {
			inCycle = true
			if err := c.handleDeadlockLocked(t, pos, cycle); err != nil {
				return err
			}
		}
	}

	// Avoidance. Skipped when the request completes an already-formed
	// deadlock: yielding cannot undo it, and under PolicyFreeze the
	// faithful behaviour is to let the deadlock manifest.
	if c.cfg.Avoidance && !inCycle && len(pos.sigs) > 0 {
		yielded, err := c.avoidLocked(t, pos)
		if err != nil {
			return err
		}
		if yielded {
			c.stats.Resumes++
			c.emitLocked(Event{
				Kind:       EventResume,
				ThreadID:   t.id,
				ThreadName: t.name,
				Pos:        pos.key,
			})
		}
	}
	t.forceResume = false

	// Approve: enter pos's queue and set the request edge.
	t.reqLock = l
	t.reqPos = pos
	t.reqEntry = c.takeEntryLocked(pos, t)

	// A new waits-for edge (t→l) may complete a starvation cycle for a
	// current yielder.
	c.scanYieldersLocked()
	return nil
}

// Acquired implements the post-monitorenter interception: t now owns l.
// The request edge is replaced by a hold edge and the position entry is
// transferred from the thread to the lock (it stays in the same queue: the
// thread went from "allowed to wait at pos" to "holds at pos").
func (c *Core) Acquired(t, l *Node) {
	if checkArgs(t, l) != nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Acquisitions++
	if t.reqLock != l || t.reqEntry == nil {
		// Acquired without a matching approved Request.
		c.stats.Misuse++
		l.owner = t
		t.reqLock, t.reqPos, t.reqEntry = nil, nil, nil
		return
	}
	l.owner = t
	l.acqPos = t.reqPos
	l.acqEntry = t.reqEntry
	t.reqLock, t.reqPos, t.reqEntry = nil, nil, nil
	// t becoming the owner creates waits-for edges u→t for every thread u
	// blocked on l; a yield cycle may have formed.
	c.scanYieldersLocked()
}

// Release implements the pre-monitorexit interception: t is about to
// release l. The hold edge and the position-queue entry are removed; if
// the acquisition position appears in any history signature, all threads
// yielding on those signatures are woken to re-check (the paper's
// notifyAll over signatures containing the position).
func (c *Core) Release(t, l *Node) {
	if checkArgs(t, l) != nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Releases++
	if l.owner != t {
		c.stats.Misuse++
	}
	pos := l.acqPos
	if pos != nil && l.acqEntry != nil {
		c.releaseEntryLocked(pos, l.acqEntry)
	}
	l.owner = nil
	l.acqPos = nil
	l.acqEntry = nil
	if pos != nil && pos.inHistory {
		for _, s := range pos.sigs {
			s.cond.Broadcast()
		}
	}
}

// Abort undoes an approved Request that will not proceed to Acquired
// (e.g. the embedding runtime cancelled a blocked monitorenter during
// process teardown). The position entry and the request edge are removed
// and yielders on affected signatures are woken.
func (c *Core) Abort(t, l *Node) {
	if checkArgs(t, l) != nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Aborts++
	if t.reqLock != l {
		c.stats.Misuse++
		return
	}
	pos := t.reqPos
	if pos != nil && t.reqEntry != nil {
		c.releaseEntryLocked(pos, t.reqEntry)
		if pos.inHistory {
			for _, s := range pos.sigs {
				s.cond.Broadcast()
			}
		}
	}
	t.reqLock, t.reqPos, t.reqEntry = nil, nil, nil
}

// takeEntryLocked allocates or recycles a queue entry, tracking the
// allocation high-water mark.
func (c *Core) takeEntryLocked(pos *Position, t *Node) *entry {
	if c.cfg.QueueReuse && pos.free.len() > 0 {
		return pos.takeEntry(t, true)
	}
	c.entriesAllocated++
	return pos.takeEntry(t, false)
}

// releaseEntryLocked returns an entry to the position's free list.
func (c *Core) releaseEntryLocked(pos *Position, e *entry) {
	pos.releaseEntry(e, c.cfg.QueueReuse)
}

// AddSignature installs a signature directly (deduplicated by key) and
// persists it if a store is configured. It returns the installed snapshot
// and whether the signature was new. Synthetic histories for benchmarks
// (§5's 64–256 synthetic signatures) are built this way.
func (c *Core) AddSignature(sig *Signature) (SignatureInfo, bool, error) {
	if sig == nil {
		return SignatureInfo{}, false, fmt.Errorf("add signature: nil signature")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	installed, fresh, err := c.installSignatureLocked(sig, true)
	if err != nil {
		return SignatureInfo{}, false, err
	}
	return installed.snapshot(), fresh, nil
}

// installSignatureLocked deduplicates, resolves outer positions, wires the
// condition variable, and optionally persists. Caller must hold c.mu.
func (c *Core) installSignatureLocked(sig *Signature, persist bool) (*Signature, bool, error) {
	if err := sig.Validate(); err != nil {
		return nil, false, err
	}
	// Identity is computed over depth-truncated outer stacks so that a
	// history recorded at a deeper depth deduplicates consistently under
	// the current configuration.
	truncated := &Signature{Kind: sig.Kind, Pairs: make([]SigPair, len(sig.Pairs))}
	for i, p := range sig.Pairs {
		truncated.Pairs[i] = SigPair{
			Outer: p.Outer.Truncate(c.cfg.OuterDepth).Clone(),
			Inner: p.Inner.Clone(),
		}
	}
	key := truncated.Key()
	if existing, ok := c.sigKeys[key]; ok {
		return existing, false, nil
	}
	s := truncated
	s.id = len(c.history)
	s.cond = sync.NewCond(&c.mu)
	s.slots = make([]*Position, len(s.Pairs))
	for i, p := range s.Pairs {
		pos := c.internLocked(p.Outer)
		s.slots[i] = pos
		pos.inHistory = true
		if !containsSig(pos.sigs, s) {
			pos.sigs = append(pos.sigs, s)
		}
	}
	c.history = append(c.history, s)
	c.sigKeys[key] = s
	c.stats.SignaturesAdded++
	if persist && c.cfg.Store != nil {
		if err := c.cfg.Store.Append(s); err != nil {
			// The in-memory antibody still protects this run; persistence
			// will be retried implicitly if the bug reoccurs next boot.
			c.stats.PersistErrors++
		}
	}
	return s, true, nil
}

// containsSig reports whether sigs already holds s.
func containsSig(sigs []*Signature, s *Signature) bool {
	for _, x := range sigs {
		if x == s {
			return true
		}
	}
	return false
}

// History returns a snapshot of all installed signatures.
func (c *Core) History() []SignatureInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]SignatureInfo, len(c.history))
	for i, s := range c.history {
		out[i] = s.snapshot()
	}
	return out
}

// HistorySize returns the number of installed signatures.
func (c *Core) HistorySize() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.history)
}

// Stats returns a snapshot of the activity counters.
func (c *Core) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// MemStats computes the current memory footprint of the core's data
// structures.
func (c *Core) MemStats() MemStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.memStatsLocked()
}

// PositionCount returns the number of interned positions.
func (c *Core) PositionCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.positions)
}

// CheckStarvationNow synchronously re-runs the starvation scan over all
// yielding threads. Tests and embedders without a watchdog can call this
// to force timely starvation handling.
func (c *Core) CheckStarvationNow() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.scanYieldersLocked()
	if c.cfg.Starvation == StarvationTimeout {
		c.timeoutYieldersLocked(time.Now())
	}
}

// watchdogLoop periodically re-scans yielders (cycle mode) and applies the
// yield timeout (timeout mode).
func (c *Core) watchdogLoop() {
	defer c.watchdogWG.Done()
	ticker := time.NewTicker(c.cfg.WatchdogPeriod)
	defer ticker.Stop()
	for {
		select {
		case <-c.watchdogStop:
			return
		case now := <-ticker.C:
			c.mu.Lock()
			if !c.killed {
				c.scanYieldersLocked()
				if c.cfg.Starvation == StarvationTimeout {
					c.timeoutYieldersLocked(now)
				}
			}
			c.mu.Unlock()
		}
	}
}

// checkArgs validates the node kinds for the interception entry points.
func checkArgs(t, l *Node) error {
	if t == nil || l == nil {
		return fmt.Errorf("core: nil node")
	}
	if t.kind != ThreadNode {
		return fmt.Errorf("core: %v is not a thread node", t)
	}
	if l.kind != LockNode {
		return fmt.Errorf("core: %v is not a lock node", l)
	}
	return nil
}
