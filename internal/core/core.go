// Package core implements Dimmunix deadlock immunity: deadlock detection
// over a resource allocation graph, deadlock signatures, a persistent
// signature history, and avoidance of execution flows that match previously
// recorded signatures.
//
// One Core instance exists per (simulated) process — platform-wide
// immunity runs Dimmunix in user space inside every application process
// (§3.1 of the paper), so state is process-local and isolated.
//
// The embedding runtime (a synchronization library, here internal/vm's
// Dalvik-like monitors) drives the core through three interception points,
// mirroring the paper's integration with lockMonitor/unlockMonitor:
//
//   - Request, before a monitorenter: runs detection, then blocks the
//     caller while any history signature could be instantiated.
//   - Acquired, right after a monitorenter succeeds.
//   - Release, right before a monitorexit.
//
// # Concurrency architecture
//
// The paper serializes the three entry points under one global per-process
// mutex ("Dimmunix uses a global lock within these methods", §4). That is
// kept as the serial reference engine (Config.Serial). The default engine
// is sharded for low contention:
//
//   - The position intern table is lock-striped into posShardCount shards
//     keyed by call-stack hash (shard.go), so interning — done on every
//     monitorenter — never touches the engine lock.
//
//   - Each Position carries the index of signatures that name it
//     (Position.sigs, maintained at signature install time) plus an atomic
//     inHistory flag, so "could this acquisition matter to avoidance?" is
//     one atomic load.
//
//   - The engine lock c.mu is a RWMutex. Detection, avoidance, signature
//     installation and the starvation scan hold it exclusively and see a
//     frozen RAG, exactly like the paper's global lock. The fast path
//     holds it shared: when the requesting position appears in no
//     installed signature, the requested lock is unowned (so granting
//     cannot complete a cycle — detection's walk would stop immediately),
//     and no thread is yielding (so no starvation cycle can involve the
//     new edge), Request/Acquired/Release skip detection-and-avoidance
//     entirely and only publish their RAG updates. Writer preference in
//     RWMutex keeps slow operations from starving.
//
// # Lock order
//
//	c.mu (engine RWMutex; shared = fast path, exclusive = slow path)
//	  > c.histMu   (history list + dedup map; History() readers take it alone)
//	  > c.nodesMu  (node registry; node constructors take it alone)
//	  > posTable shard locks (leaf; Intern takes them with no other lock)
//	  > c.evMu     (event channel; leaf)
//
// Never acquire c.mu while holding any of the inner locks. Fields read on
// the fast path while others mutate them are atomic: Node.owner,
// Position.inHistory, the yielder count, the kill flag, and the Stats
// counters (the per-thread fast-path counters are plain, written only by
// the owning thread and read under the exclusive lock).
//
// Position thread queues are maintained lazily: only in-history positions
// keep them (signature matching is their only consumer), so the fast path
// never touches a queue; when a signature first names a position, the
// queue is rebuilt from live RAG state via the node registry.
//
// # Fast-path safety argument
//
// Approving a request t→l with l unowned cannot complete a deadlock cycle
// (a cycle needs l held), and every cycle's final edge targets a held lock,
// so the request that completes a cycle always sees owner != nil and runs
// full detection under the exclusive lock. Avoidance only inspects the
// queues of positions named by signatures; a fast-path position is named
// by none (checked under the shared lock, and installation takes the
// exclusive lock, so the answer cannot change mid-operation). Starvation
// cycles need a yielder; the fast path bails out to the slow path whenever
// one exists, and a thread that starts yielding later does so under the
// exclusive lock, observing every previously published fast-path edge.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Core is one per-process Dimmunix instance.
type Core struct {
	cfg Config

	// mu is the engine lock guarding the RAG (node edges), position
	// queues, per-signature runtime state and the yielder set. Exclusive
	// for the slow path (detection, avoidance, installation, starvation
	// scans); shared for the fast path, which relies on the atomics and
	// leaf locks described in the package comment.
	mu sync.RWMutex

	// positions is the sharded per-process intern table mapping call-stack
	// keys to unique Position objects (the paper's global positions map).
	positions *posTable

	// histMu guards history and sigKeys against concurrent readers;
	// writers additionally hold c.mu exclusively.
	histMu  sync.Mutex
	history []*Signature
	sigKeys map[string]*Signature

	// yielders tracks threads currently suspended by avoidance (under
	// exclusive c.mu); yielderCount mirrors len(yielders) atomically for
	// the fast-path gate.
	yielders     map[*Node]*yieldRecord
	yielderCount atomic.Int32

	// nodesMu guards the node registry. The registry exists so that
	// installSignatureLocked can rebuild a newly named position's thread
	// queue from live RAG state (queues are maintained lazily, only for
	// in-history positions) and so Stats can aggregate the per-thread
	// fast-path counters.
	nodesMu     sync.Mutex
	threadNodes []*Node
	lockNodes   []*Node

	nodeCount        atomic.Uint64
	entriesAllocated atomic.Uint64

	// matchScratch is the reusable slot-assignment buffer for signature
	// matching (safe: matching always runs under exclusive c.mu).
	matchScratch []*Node

	// stats fields are all mutated with sync/atomic (the fast path updates
	// them without the engine lock). Snapshot with Stats().
	stats Stats

	// evMu guards the event channel and its closed flag.
	evMu         sync.Mutex
	events       chan Event
	eventsClosed bool

	killed atomic.Bool

	watchdogStop chan struct{}
	watchdogWG   sync.WaitGroup
}

// New creates a Core with the given options applied over DefaultConfig.
// If a history store is configured, all persisted signatures are loaded
// and installed before New returns, so avoidance is armed from the first
// monitorenter — this is the paper's initDimmunix, called when Zygote
// forks a new process.
func New(opts ...Option) (*Core, error) {
	cfg := DefaultConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &Core{
		cfg:       cfg,
		positions: newPosTable(),
		sigKeys:   make(map[string]*Signature),
		yielders:  make(map[*Node]*yieldRecord),
		events:    make(chan Event, cfg.EventBuffer),
	}
	if cfg.Store != nil {
		sigs, err := cfg.Store.Load()
		if err != nil {
			return nil, fmt.Errorf("init dimmunix: %w", err)
		}
		c.mu.Lock()
		for _, s := range sigs {
			installed, fresh, err := c.installSignatureLocked(s, false)
			if err != nil {
				c.mu.Unlock()
				return nil, fmt.Errorf("init dimmunix: install signature: %w", err)
			}
			if fresh {
				atomic.AddUint64(&c.stats.SignaturesLoaded, 1)
				c.emit(Event{Kind: EventSignatureLoaded, Sig: installed.snapshot()})
			}
		}
		c.mu.Unlock()
	}
	if cfg.WatchdogPeriod > 0 {
		c.watchdogStop = make(chan struct{})
		c.watchdogWG.Add(1)
		go c.watchdogLoop()
	}
	return c, nil
}

// Config returns a copy of the effective configuration.
func (c *Core) Config() Config { return c.cfg }

// Events returns the event stream. The channel is closed by Close. Events
// are dropped (never blocking the synchronization path) if the consumer
// falls behind.
func (c *Core) Events() <-chan Event { return c.events }

// Close shuts the core down: the watchdog stops, all threads suspended in
// avoidance are woken with ErrCoreClosed, and the event channel is closed.
// Close is idempotent.
func (c *Core) Close() error {
	if !c.killed.CompareAndSwap(false, true) {
		return nil
	}
	// Wake every yielder so blocked Requests can return ErrCoreClosed. The
	// exclusive lock orders the kill flag before any in-progress avoidance
	// check: a yielder either sees killed before waiting or is already
	// parked on its condition variable when the broadcast fires.
	c.mu.Lock()
	c.histMu.Lock()
	for _, s := range c.history {
		s.cond.Broadcast()
	}
	c.histMu.Unlock()
	c.mu.Unlock()

	if c.watchdogStop != nil {
		close(c.watchdogStop)
		c.watchdogWG.Wait()
	}

	c.evMu.Lock()
	c.eventsClosed = true
	close(c.events)
	c.evMu.Unlock()
	return nil
}

// NewThreadNode creates the RAG node for a thread. stackFn, which may be
// nil, captures the thread's current full call stack for the informational
// inner stacks of signatures; it must be safe to call from any goroutine.
// The paper embeds this node in Dalvik's Thread struct ("Node node").
func (c *Core) NewThreadNode(name string, stackFn func() CallStack) *Node {
	n := &Node{kind: ThreadNode, id: c.nodeCount.Add(1), name: name, stackFn: stackFn}
	c.nodesMu.Lock()
	c.threadNodes = append(c.threadNodes, n)
	c.nodesMu.Unlock()
	return n
}

// NewLockNode creates the RAG node for a lock (monitor). The paper embeds
// this node in Dalvik's Monitor struct.
func (c *Core) NewLockNode(name string) *Node {
	n := &Node{kind: LockNode, id: c.nodeCount.Add(1), name: name}
	c.nodesMu.Lock()
	c.lockNodes = append(c.lockNodes, n)
	c.nodesMu.Unlock()
	return n
}

// RetireThreadNode removes a terminated thread's node from the registry,
// folding its fast-path counters into the core totals. Nodes are
// otherwise retained for the Core's lifetime (the paper embeds them in
// Thread/Monitor structs), so embeddings with thread churn should retire
// nodes as threads exit to keep the registry — which signature
// installation and Stats scan — bounded by live threads. A node still
// holding an approved request or a yield is left registered (the RAG
// still references it).
func (c *Core) RetireThreadNode(t *Node) {
	if t == nil || t.kind != ThreadNode {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.reqLock != nil || t.yield != nil {
		return
	}
	atomic.AddUint64(&c.stats.FastRequests, t.fastRequests)
	atomic.AddUint64(&c.stats.FastAcquisitions, t.fastAcquisitions)
	atomic.AddUint64(&c.stats.FastReleases, t.fastReleases)
	t.fastRequests, t.fastAcquisitions, t.fastReleases = 0, 0, 0
	c.nodesMu.Lock()
	c.threadNodes = removeNode(c.threadNodes, t)
	c.nodesMu.Unlock()
}

// RetireLockNode removes a dead (unheld, unrequested) lock's node from
// the registry — the monitor-deflation hook for embeddings that reclaim
// monitors. A held lock is left registered.
func (c *Core) RetireLockNode(l *Node) {
	if l == nil || l.kind != LockNode {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if l.owner.Load() != nil || l.acqEntry != nil {
		return
	}
	c.nodesMu.Lock()
	c.lockNodes = removeNode(c.lockNodes, l)
	c.nodesMu.Unlock()
}

// removeNode deletes n from nodes (order not preserved).
func removeNode(nodes []*Node, n *Node) []*Node {
	for i, x := range nodes {
		if x == n {
			nodes[i] = nodes[len(nodes)-1]
			nodes[len(nodes)-1] = nil
			return nodes[:len(nodes)-1]
		}
	}
	return nodes
}

// Intern returns the unique Position for the given outer call stack,
// truncated to the configured outer depth. Interning touches only the
// sharded table, never the engine lock. The stack is cloned when a new
// Position is created, so callers may reuse their capture buffers (the
// paper's Thread.stackBuffer).
func (c *Core) Intern(stack CallStack) (*Position, error) {
	if len(stack) == 0 {
		return nil, fmt.Errorf("intern: empty call stack")
	}
	return c.positions.intern(stack.Truncate(c.cfg.OuterDepth)), nil
}

// Request implements the pre-monitorenter interception. t is about to
// request lock l with outer call stack position pos. Request:
//
//  1. Runs deadlock detection: if granting the request would complete a
//     RAG cycle, the deadlock's signature is recorded (and persisted), and
//     Request either proceeds (PolicyFreeze — the deadlock happens, as on
//     an unmodified phone it would, but now with an antibody saved) or
//     returns *DeadlockError (PolicyFail).
//  2. Runs avoidance: while the pretended approval would make any history
//     signature instantiable, the calling goroutine is suspended on that
//     signature's condition variable (§2.2).
//  3. Approves: t is registered in pos's thread queue ("holds or is
//     allowed to wait for a lock at pos") and the request edge t→l is
//     added to the RAG.
//
// When the position is named by no installed signature, the lock is
// unowned and nothing is yielding, steps 1 and 2 are provably no-ops and
// Request takes the shared-lock fast path (see the package comment).
//
// On success the caller must proceed to block on the real lock and then
// call Acquired; if the caller gives up instead it must call Abort.
func (c *Core) Request(t, l *Node, pos *Position) error {
	if err := checkArgs(t, l); err != nil {
		return err
	}
	if pos == nil {
		return fmt.Errorf("request: nil position")
	}
	if c.fastRequest(t, l, pos) {
		return nil
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.killed.Load() {
		return ErrCoreClosed
	}
	atomic.AddUint64(&c.stats.Requests, 1)
	if t.reqLock != nil {
		// A second Request without Acquired/Abort: tolerate but count.
		atomic.AddUint64(&c.stats.Misuse, 1)
	}

	inCycle := false
	if c.cfg.Detection {
		if cycle := c.findCycleLocked(t, l); cycle != nil {
			inCycle = true
			if err := c.handleDeadlockLocked(t, pos, cycle); err != nil {
				return err
			}
		}
	}

	// Avoidance. Skipped when the request completes an already-formed
	// deadlock: yielding cannot undo it, and under PolicyFreeze the
	// faithful behaviour is to let the deadlock manifest.
	if c.cfg.Avoidance && !inCycle && len(pos.sigs) > 0 {
		yielded, err := c.avoidLocked(t, pos)
		if err != nil {
			return err
		}
		if yielded {
			atomic.AddUint64(&c.stats.Resumes, 1)
			c.emit(Event{
				Kind:       EventResume,
				ThreadID:   t.id,
				ThreadName: t.name,
				Pos:        pos.key,
			})
		}
	}
	t.forceResume = false

	// Approve: set the request edge, and enter pos's queue when pos is
	// named by a signature (queues are maintained lazily — positions
	// outside every signature are never matched against, and their queues
	// are rebuilt from RAG state if a signature naming them installs).
	t.reqLock = l
	t.reqPos = pos
	if pos.inHistory.Load() {
		t.reqEntry = c.takeEntryLocked(pos, t)
	} else {
		t.reqEntry = nil
	}

	// A new waits-for edge (t→l) may complete a starvation cycle for a
	// current yielder.
	c.scanYieldersLocked()
	return nil
}

// fastRequest is the sharded engine's low-contention approval: under the
// shared engine lock it verifies that detection and avoidance would both
// be no-ops — the position is named by no signature, the lock is unowned,
// nothing yields — and then only publishes the approval (request edge +
// queue entry). Returns false to fall back to the serial reference path.
func (c *Core) fastRequest(t, l *Node, pos *Position) bool {
	if c.cfg.Serial {
		return false
	}
	c.mu.RLock()
	if c.killed.Load() || t.reqLock != nil || pos.inHistory.Load() ||
		l.owner.Load() != nil || c.yielderCount.Load() != 0 {
		c.mu.RUnlock()
		return false
	}
	t.fastRequests++
	t.forceResume = false
	t.reqLock = l
	t.reqPos = pos
	t.reqEntry = nil // lazy queues: no entry for positions outside every signature
	c.mu.RUnlock()
	return true
}

// Acquired implements the post-monitorenter interception: t now owns l.
// The request edge is replaced by a hold edge and the position entry is
// transferred from the thread to the lock (it stays in the same queue: the
// thread went from "allowed to wait at pos" to "holds at pos").
func (c *Core) Acquired(t, l *Node) {
	if checkArgs(t, l) != nil {
		return
	}
	if c.fastAcquired(t, l) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	atomic.AddUint64(&c.stats.Acquisitions, 1)
	if t.reqLock != l {
		// Acquired without a matching approved Request.
		atomic.AddUint64(&c.stats.Misuse, 1)
		l.owner.Store(t)
		t.reqLock, t.reqPos, t.reqEntry = nil, nil, nil
		return
	}
	l.acqPos = t.reqPos
	l.acqEntry = t.reqEntry
	t.reqLock, t.reqPos, t.reqEntry = nil, nil, nil
	l.owner.Store(t)
	// t becoming the owner creates waits-for edges u→t for every thread u
	// blocked on l; a yield cycle may have formed.
	c.scanYieldersLocked()
}

// fastAcquired publishes the hold edge under the shared lock. Only the
// acquiring thread writes l's acquisition fields (ownership transfers are
// serialized by the embedding runtime's real lock), and the owner pointer
// is atomic for concurrent fastRequest readers. Skipped whenever a thread
// yields, so the starvation scan never misses a new hold edge.
func (c *Core) fastAcquired(t, l *Node) bool {
	if c.cfg.Serial {
		return false
	}
	c.mu.RLock()
	if t.reqLock != l || c.yielderCount.Load() != 0 {
		c.mu.RUnlock()
		return false
	}
	t.fastAcquisitions++
	l.acqPos = t.reqPos
	l.acqEntry = t.reqEntry
	t.reqLock, t.reqPos, t.reqEntry = nil, nil, nil
	l.owner.Store(t)
	c.mu.RUnlock()
	return true
}

// Release implements the pre-monitorexit interception: t is about to
// release l. The hold edge and the position-queue entry are removed; if
// the acquisition position appears in any history signature, all threads
// yielding on those signatures are woken to re-check (the paper's
// notifyAll over signatures containing the position).
func (c *Core) Release(t, l *Node) {
	if checkArgs(t, l) != nil {
		return
	}
	if c.fastRelease(t, l) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	atomic.AddUint64(&c.stats.Releases, 1)
	if l.owner.Load() != t {
		atomic.AddUint64(&c.stats.Misuse, 1)
	}
	pos := l.acqPos
	if pos != nil && l.acqEntry != nil {
		c.releaseEntryLocked(pos, l.acqEntry)
	}
	l.owner.Store(nil)
	l.acqPos = nil
	l.acqEntry = nil
	if pos != nil && pos.inHistory.Load() {
		for _, s := range pos.sigs {
			s.cond.Broadcast()
		}
	}
}

// fastRelease removes the hold edge under the shared lock. Requires the
// caller to be the current owner (so l's acquisition fields are its own
// writes) and the position to be outside every signature (so no yielder
// needs waking).
func (c *Core) fastRelease(t, l *Node) bool {
	if c.cfg.Serial {
		return false
	}
	c.mu.RLock()
	// Owner check first: only when t is the owner are l.acqPos/acqEntry
	// t's own prior writes, safe to read without the exclusive lock.
	if l.owner.Load() != t {
		c.mu.RUnlock()
		return false
	}
	pos := l.acqPos
	if pos == nil || pos.inHistory.Load() || l.acqEntry != nil {
		// In-history positions release on the slow path (queue entry to
		// recycle, yielders to wake). A non-nil entry at a non-history
		// position cannot happen; routing it to the slow path keeps the
		// misuse tolerance in one place.
		c.mu.RUnlock()
		return false
	}
	t.fastReleases++
	l.acqPos = nil
	l.owner.Store(nil)
	c.mu.RUnlock()
	return true
}

// Abort undoes an approved Request that will not proceed to Acquired
// (e.g. the embedding runtime cancelled a blocked monitorenter during
// process teardown). The position entry and the request edge are removed
// and yielders on affected signatures are woken. Aborts are rare (they
// happen on teardown), so there is no fast path.
func (c *Core) Abort(t, l *Node) {
	if checkArgs(t, l) != nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	atomic.AddUint64(&c.stats.Aborts, 1)
	if t.reqLock != l {
		atomic.AddUint64(&c.stats.Misuse, 1)
		return
	}
	pos := t.reqPos
	if pos != nil && t.reqEntry != nil {
		c.releaseEntryLocked(pos, t.reqEntry)
		if pos.inHistory.Load() {
			for _, s := range pos.sigs {
				s.cond.Broadcast()
			}
		}
	}
	t.reqLock, t.reqPos, t.reqEntry = nil, nil, nil
}

// takeEntryLocked allocates or recycles a queue entry, tracking the
// allocation high-water mark. Caller must hold c.mu exclusively.
func (c *Core) takeEntryLocked(pos *Position, t *Node) *entry {
	if c.cfg.QueueReuse && pos.free.len() > 0 {
		return pos.takeEntry(t, true)
	}
	c.entriesAllocated.Add(1)
	return pos.takeEntry(t, false)
}

// releaseEntryLocked returns an entry to the position's free list. Caller
// must hold c.mu exclusively.
func (c *Core) releaseEntryLocked(pos *Position, e *entry) {
	pos.releaseEntry(e, c.cfg.QueueReuse)
}

// AddSignature installs a signature directly (deduplicated by key) and
// persists it if a store is configured. It returns the installed snapshot
// and whether the signature was new. Synthetic histories for benchmarks
// (§5's 64–256 synthetic signatures) are built this way.
func (c *Core) AddSignature(sig *Signature) (SignatureInfo, bool, error) {
	if sig == nil {
		return SignatureInfo{}, false, fmt.Errorf("add signature: nil signature")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	installed, fresh, err := c.installSignatureLocked(sig, true)
	if err != nil {
		return SignatureInfo{}, false, err
	}
	return installed.snapshot(), fresh, nil
}

// InstallSignature installs a signature that originated outside this
// process — the platform immunity service's hot-install path, pushed to
// live processes when another process detects a deadlock — without
// persisting it (the service is the single writer of the persistent
// history). Installation is idempotent: a signature already in the history
// is a no-op. On success the position(s) named by the signature flip to
// the slow path (Position.inHistory), so avoidance is armed for all
// subsequent monitorenters with no restart.
func (c *Core) InstallSignature(sig *Signature) (SignatureInfo, bool, error) {
	if sig == nil {
		return SignatureInfo{}, false, fmt.Errorf("install signature: nil signature")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.killed.Load() {
		return SignatureInfo{}, false, ErrCoreClosed
	}
	installed, fresh, err := c.installSignatureLocked(sig, false)
	if err != nil {
		return SignatureInfo{}, false, err
	}
	if fresh {
		atomic.AddUint64(&c.stats.SignaturesInstalled, 1)
		c.emit(Event{Kind: EventSignatureInstalled, Sig: installed.snapshot()})
	}
	return installed.snapshot(), fresh, nil
}

// installSignatureLocked deduplicates, resolves outer positions, wires the
// condition variable, and optionally persists. Caller must hold c.mu
// exclusively — installation flips positions from the fast path to the
// slow path (Position.inHistory), which must not happen mid-operation.
func (c *Core) installSignatureLocked(sig *Signature, persist bool) (*Signature, bool, error) {
	if err := sig.Validate(); err != nil {
		return nil, false, err
	}
	// Identity is computed over depth-truncated outer stacks so that a
	// history recorded at a deeper depth deduplicates consistently under
	// the current configuration.
	truncated := &Signature{Kind: sig.Kind, Pairs: make([]SigPair, len(sig.Pairs))}
	for i, p := range sig.Pairs {
		truncated.Pairs[i] = SigPair{
			Outer: p.Outer.Truncate(c.cfg.OuterDepth).Clone(),
			Inner: p.Inner.Clone(),
		}
	}
	key := truncated.Key()
	c.histMu.Lock()
	existing, ok := c.sigKeys[key]
	c.histMu.Unlock()
	if ok {
		return existing, false, nil
	}
	s := truncated
	s.cond = sync.NewCond(&c.mu)
	s.slots = make([]*Position, len(s.Pairs))
	for i, p := range s.Pairs {
		pos := c.positions.intern(p.Outer.Truncate(c.cfg.OuterDepth))
		s.slots[i] = pos
		if !containsSig(pos.sigs, s) {
			pos.sigs = append(pos.sigs, s)
		}
		if !pos.inHistory.Load() {
			// First signature naming this position: arm it and rebuild its
			// lazily maintained thread queue from live RAG state, so
			// matching sees every current holder and approved waiter.
			pos.inHistory.Store(true)
			c.rebuildQueueLocked(pos)
		}
	}
	c.histMu.Lock()
	s.id = len(c.history)
	c.history = append(c.history, s)
	c.sigKeys[key] = s
	c.histMu.Unlock()
	atomic.AddUint64(&c.stats.SignaturesAdded, 1)
	if persist && c.cfg.Store != nil {
		if err := c.cfg.Store.Append(s); err != nil {
			// The in-memory antibody still protects this run; persistence
			// will be retried implicitly if the bug reoccurs next boot.
			atomic.AddUint64(&c.stats.PersistErrors, 1)
		}
	}
	return s, true, nil
}

// rebuildQueueLocked populates a newly armed position's thread queue from
// the RAG: one entry per lock currently held that was acquired at pos, and
// one per approved in-flight request at pos. Queues of positions outside
// every signature are not maintained (nothing ever matches against them);
// this reconstruction runs once, when the position first becomes named by
// a signature, under the exclusive engine lock. Caller must hold c.mu
// exclusively.
func (c *Core) rebuildQueueLocked(pos *Position) {
	c.nodesMu.Lock()
	defer c.nodesMu.Unlock()
	for _, l := range c.lockNodes {
		if l.acqPos == pos && l.acqEntry == nil {
			if owner := l.owner.Load(); owner != nil {
				l.acqEntry = c.takeEntryLocked(pos, owner)
			}
		}
	}
	for _, t := range c.threadNodes {
		if t.reqPos == pos && t.reqLock != nil && t.reqEntry == nil {
			t.reqEntry = c.takeEntryLocked(pos, t)
		}
	}
}

// containsSig reports whether sigs already holds s.
func containsSig(sigs []*Signature, s *Signature) bool {
	for _, x := range sigs {
		if x == s {
			return true
		}
	}
	return false
}

// History returns a snapshot of all installed signatures.
func (c *Core) History() []SignatureInfo {
	c.histMu.Lock()
	defer c.histMu.Unlock()
	out := make([]SignatureInfo, len(c.history))
	for i, s := range c.history {
		out[i] = s.snapshot()
	}
	return out
}

// HistorySize returns the number of installed signatures.
func (c *Core) HistorySize() int {
	c.histMu.Lock()
	defer c.histMu.Unlock()
	return len(c.history)
}

// Stats returns a snapshot of the activity counters. The fast-path
// counters live on the thread nodes (written lock-free by each thread);
// aggregating them takes the exclusive engine lock briefly to exclude
// in-flight fast operations.
func (c *Core) Stats() Stats {
	out := c.stats.snapshot()
	c.mu.Lock()
	c.nodesMu.Lock()
	for _, t := range c.threadNodes {
		out.FastRequests += t.fastRequests
		out.FastAcquisitions += t.fastAcquisitions
		out.FastReleases += t.fastReleases
	}
	c.nodesMu.Unlock()
	c.mu.Unlock()
	out.Requests += out.FastRequests
	out.Acquisitions += out.FastAcquisitions
	out.Releases += out.FastReleases
	return out
}

// MemStats computes the current memory footprint of the core's data
// structures.
func (c *Core) MemStats() MemStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.memStatsLocked()
}

// PositionCount returns the number of interned positions.
func (c *Core) PositionCount() int {
	return c.positions.count()
}

// CheckStarvationNow synchronously re-runs the starvation scan over all
// yielding threads. Tests and embedders without a watchdog can call this
// to force timely starvation handling.
func (c *Core) CheckStarvationNow() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.scanYieldersLocked()
	if c.cfg.Starvation == StarvationTimeout {
		c.timeoutYieldersLocked(time.Now())
	}
}

// watchdogLoop periodically re-scans yielders (cycle mode) and applies the
// yield timeout (timeout mode).
func (c *Core) watchdogLoop() {
	defer c.watchdogWG.Done()
	ticker := time.NewTicker(c.cfg.WatchdogPeriod)
	defer ticker.Stop()
	for {
		select {
		case <-c.watchdogStop:
			return
		case now := <-ticker.C:
			c.mu.Lock()
			if !c.killed.Load() {
				c.scanYieldersLocked()
				if c.cfg.Starvation == StarvationTimeout {
					c.timeoutYieldersLocked(now)
				}
			}
			c.mu.Unlock()
		}
	}
}

// checkArgs validates the node kinds for the interception entry points.
func checkArgs(t, l *Node) error {
	if t == nil || l == nil {
		return fmt.Errorf("core: nil node")
	}
	if t.kind != ThreadNode {
		return fmt.Errorf("core: %v is not a thread node", t)
	}
	if l.kind != LockNode {
		return fmt.Errorf("core: %v is not a lock node", l)
	}
	return nil
}
