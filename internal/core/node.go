package core

import (
	"fmt"
	"sync/atomic"
	"time"
)

// NodeKind distinguishes the two kinds of RAG nodes.
type NodeKind int

// RAG node kinds. The paper's initNode takes T_THREAD or T_MONITOR.
const (
	ThreadNode NodeKind = iota + 1
	LockNode
)

// String returns a human-readable kind name.
func (k NodeKind) String() string {
	switch k {
	case ThreadNode:
		return "thread"
	case LockNode:
		return "lock"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Node is a resource allocation graph (RAG) node, corresponding to either a
// thread or a lock (monitor). The paper embeds a Node in Dalvik's Thread
// and Monitor structs for zero-overhead lookup; here the VM keeps a *Node
// pointer inside its Thread and Monitor types, created via
// Core.NewThreadNode / Core.NewLockNode.
//
// The RAG for mutex-only synchronization is sparse: a thread requests at
// most one lock at a time and a lock has at most one owner, so edges are
// plain pointer fields and cycle detection is a chain walk.
//
// Mutable fields are guarded by the owning Core's engine lock. Thread-node
// fields are additionally written under the shared engine lock, but only
// ever by the thread the node belongs to, so shared-lock holders never
// race on them. The owner pointer is atomic: the fast path reads it
// lock-free to prove a requested lock uncontended.
type Node struct {
	kind NodeKind
	id   uint64
	name string

	// ---- thread-node state ----

	// reqLock is the lock this thread has been approved to wait for and has
	// not yet acquired (the request edge thread→lock). Set when Request
	// approves, cleared by Acquired or Abort.
	reqLock *Node
	// reqPos is the position of the pending request.
	reqPos *Position
	// reqEntry is the thread's entry in reqPos's queue for the pending
	// acquisition ("allowed to wait"). Transferred to the lock node on
	// Acquired.
	reqEntry *entry
	// yield is non-nil while the thread is suspended by avoidance, and
	// records which signature it yields on and the instantiation witness.
	yield *yieldRecord
	// forceResume, when true, makes the next avoidance check approve the
	// thread unconditionally. Set by starvation handling (§2.2: "resumes
	// the suspended thread").
	forceResume bool
	// stackFn captures the thread's current full call stack; used only for
	// the informational inner call stacks of signatures. May be nil.
	stackFn func() CallStack
	// fastRequests/fastAcquisitions/fastReleases count this thread's
	// fast-path operations. Plain fields: only the owning thread writes
	// them (under the shared engine lock), and Core.Stats aggregates them
	// under the exclusive lock, which excludes all fast-path writers.
	fastRequests     uint64
	fastAcquisitions uint64
	fastReleases     uint64

	// ---- lock-node state ----

	// owner is the thread currently holding this lock (the hold edge
	// lock→thread). nil when the lock is free. Atomic: written by the
	// acquiring/releasing thread (ownership handoffs are serialized by the
	// embedding runtime's real lock), read concurrently by fast-path
	// requests checking for contention.
	owner atomic.Pointer[Node]
	// acqPos is the position at which owner acquired the lock — the
	// paper's l.acqPos, i.e. the candidate outer call stack.
	acqPos *Position
	// acqEntry is the owner's entry in acqPos's queue for this holding.
	acqEntry *entry
}

// Kind returns the node kind.
func (n *Node) Kind() NodeKind { return n.kind }

// ID returns the node's unique id within its Core.
func (n *Node) ID() uint64 { return n.id }

// Name returns the diagnostic name given at creation.
func (n *Node) Name() string { return n.name }

// String renders the node for diagnostics.
func (n *Node) String() string {
	return fmt.Sprintf("%s#%d(%s)", n.kind, n.id, n.name)
}

// yieldRecord captures one avoidance suspension: the signature yielded on
// and the witness assignment that made the instantiation possible. The
// witness set feeds the starvation (avoidance-induced deadlock) cycle
// check.
type yieldRecord struct {
	sig *Signature
	// witnesses maps each matched thread to the position it was matched
	// at, excluding the yielding thread itself.
	witnesses map[*Node]*Position
	// pos is the position the yielding thread was requesting at.
	pos *Position
	// since is when the yield began (for the timeout fallback).
	since time.Time
}

// innerStack captures the thread's current stack via stackFn, or returns a
// placeholder frame when no capture function was registered. Signatures
// always carry a non-empty inner stack so they can round-trip through the
// history file.
func (n *Node) innerStack() CallStack {
	if n.stackFn != nil {
		if cs := n.stackFn(); len(cs) > 0 {
			return cs.Clone()
		}
	}
	return CallStack{{Class: "unknown", Method: "unknown", Line: 0}}
}
