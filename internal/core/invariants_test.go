package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// Property tests over randomized schedules: whatever interleaving of
// ordered acquisitions runs, the core must (a) never report a deadlock
// when lock ordering makes one impossible, (b) balance its counters, and
// (c) return to a clean state (empty queues, no owners, no request edges)
// once everything is released.

// randomOrderedSchedule runs `threads` goroutines, each performing
// `opsPer` nested acquisitions of randomly chosen locks in ascending lock
// order (deadlock-free by construction), and then verifies the core's
// invariants.
func randomOrderedSchedule(t *testing.T, seed int64, threads, locks, opsPer int) {
	t.Helper()
	c, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	lockNodes := make([]*Node, locks)
	positions := make([]*Position, locks)
	for i := range lockNodes {
		lockNodes[i] = c.NewLockNode(fmt.Sprintf("L%d", i))
		p, err := c.Intern(CallStack{{Class: "inv.Site", Method: "m", Line: i}})
		if err != nil {
			t.Fatal(err)
		}
		positions[i] = p
	}
	// Per-lock mutexes stand in for the real monitors the VM would block
	// on: the core tracks, the mutexes enforce.
	realLocks := make([]sync.Mutex, locks)

	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			th := c.NewThreadNode(fmt.Sprintf("T%d", w), nil)
			for op := 0; op < opsPer; op++ {
				// Pick 1–3 distinct locks; acquire in ascending order.
				k := 1 + rng.Intn(3)
				chosen := rng.Perm(locks)[:k]
				sortInts(chosen)
				for _, li := range chosen {
					if err := c.Request(th, lockNodes[li], positions[li]); err != nil {
						t.Errorf("request: %v", err)
						return
					}
					realLocks[li].Lock()
					c.Acquired(th, lockNodes[li])
				}
				for i := k - 1; i >= 0; i-- {
					li := chosen[i]
					c.Release(th, lockNodes[li])
					realLocks[li].Unlock()
				}
			}
		}(w)
	}
	wg.Wait()

	st := c.Stats()
	if st.DeadlocksDetected != 0 {
		t.Errorf("ordered schedule detected %d deadlocks", st.DeadlocksDetected)
	}
	if st.Requests != st.Acquisitions || st.Acquisitions != st.Releases {
		t.Errorf("unbalanced counters: %d requests, %d acquisitions, %d releases",
			st.Requests, st.Acquisitions, st.Releases)
	}
	if st.Misuse != 0 {
		t.Errorf("misuse = %d", st.Misuse)
	}
	ms := c.MemStats()
	if ms.QueueEntriesLive != 0 {
		t.Errorf("live queue entries after quiescence: %d", ms.QueueEntriesLive)
	}
	for i, l := range lockNodes {
		if l.owner.Load() != nil || l.acqPos != nil || l.acqEntry != nil {
			t.Errorf("lock %d not clean after quiescence", i)
		}
	}
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func TestInvariantOrderedSchedules(t *testing.T) {
	seeds := make([]int64, 10)
	if err := quick.Check(func(s int64) bool { seeds = append(seeds, s); return true }, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
	for _, seed := range seeds {
		randomOrderedSchedule(t, seed, 4, 5, 30)
		if t.Failed() {
			t.Fatalf("failed at seed %d", seed)
		}
	}
}

// TestInvariantWithArmedHistory repeats the ordered schedule with a
// history whose signatures cover the schedule's own positions: avoidance
// runs constantly, may yield, but must neither deadlock nor lose state.
func TestInvariantWithArmedHistory(t *testing.T) {
	c, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const locks = 4
	lockNodes := make([]*Node, locks)
	positions := make([]*Position, locks)
	for i := range lockNodes {
		lockNodes[i] = c.NewLockNode(fmt.Sprintf("L%d", i))
		p, err := c.Intern(CallStack{{Class: "inv.Site", Method: "m", Line: i}})
		if err != nil {
			t.Fatal(err)
		}
		positions[i] = p
	}
	// Arm pairwise signatures over adjacent positions.
	for i := 0; i+1 < locks; i++ {
		mustAdd(t, c, sigOf(DeadlockSig,
			fr("inv.Site", "m", i),
			fr("inv.Site", "m", i+1),
		))
	}

	realLocks := make([]sync.Mutex, locks)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) * 977))
			th := c.NewThreadNode(fmt.Sprintf("T%d", w), nil)
			for op := 0; op < 50; op++ {
				li := rng.Intn(locks)
				if err := c.Request(th, lockNodes[li], positions[li]); err != nil {
					t.Errorf("request: %v", err)
					return
				}
				realLocks[li].Lock()
				c.Acquired(th, lockNodes[li])
				c.Release(th, lockNodes[li])
				realLocks[li].Unlock()
			}
		}(w)
	}
	wg.Wait()

	st := c.Stats()
	if st.DeadlocksDetected != 0 {
		t.Errorf("armed history schedule detected %d deadlocks", st.DeadlocksDetected)
	}
	if ms := c.MemStats(); ms.QueueEntriesLive != 0 {
		t.Errorf("live entries after quiescence: %d", ms.QueueEntriesLive)
	}
}

// TestInvariantAbortPaths interleaves aborted requests with completed
// ones; aborts must leave no residue.
func TestInvariantAbortPaths(t *testing.T) {
	h := newHarness(t)
	th := h.thread("t")
	l := h.lock("l")
	p := h.pos("A", "m", 1)
	for i := 0; i < 50; i++ {
		if i%2 == 0 {
			if err := h.c.Request(th, l, p); err != nil {
				t.Fatal(err)
			}
			h.c.Abort(th, l)
		} else {
			h.acquire(th, l, p)
			h.release(th, l)
		}
	}
	ms := h.c.MemStats()
	if ms.QueueEntriesLive != 0 {
		t.Errorf("live entries = %d, want 0", ms.QueueEntriesLive)
	}
	st := h.c.Stats()
	if st.Aborts != 25 || st.Acquisitions != 25 {
		t.Errorf("aborts=%d acquisitions=%d, want 25/25", st.Aborts, st.Acquisitions)
	}
	if th.reqLock != nil || th.reqEntry != nil {
		t.Error("thread left with request residue")
	}
}

// TestInvariantEntryReuseHighWaterMark: the allocation count must plateau
// at the maximum concurrent occupancy per position, independent of total
// operation count (the §4 claim).
func TestInvariantEntryReuseHighWaterMark(t *testing.T) {
	h := newHarness(t)
	p := h.pos("A", "m", 1)
	h.arm("A", "m", 1) // queues (and hence entries) exist only for armed positions
	const concurrent = 5
	threads := make([]*Node, concurrent)
	lcks := make([]*Node, concurrent)
	for i := range threads {
		threads[i] = h.thread(fmt.Sprintf("t%d", i))
		lcks[i] = h.lock(fmt.Sprintf("l%d", i))
	}
	for round := 0; round < 40; round++ {
		for i := 0; i < concurrent; i++ {
			h.acquire(threads[i], lcks[i], p)
		}
		for i := 0; i < concurrent; i++ {
			h.release(threads[i], lcks[i])
		}
	}
	ms := h.c.MemStats()
	if ms.QueueEntriesAllocated != concurrent {
		t.Errorf("allocated %d entries over 40 rounds, want %d (high-water mark)",
			ms.QueueEntriesAllocated, concurrent)
	}
}
