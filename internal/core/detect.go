package core

import "sync/atomic"

// Deadlock detection. Every time a thread t requests a lock, Dimmunix
// looks for RAG cycles containing t (§2.2). Because each thread requests
// at most one lock and each lock has at most one owner, the reachable part
// of the RAG from the requested lock is a simple chain, so detection is a
// pointer walk: requested lock → its owner → the lock that owner requests
// → that lock's owner → … A cycle exists iff the walk returns to t.

// cycleLink is one (lock, holder) hop of a detected cycle: holder owns
// lock (acquired at lock.acqPos) and is requesting the next link's lock.
type cycleLink struct {
	lock   *Node
	holder *Node
}

// findCycleLocked walks the RAG from lock l and returns the cycle's links
// if granting t→l would complete a deadlock, or nil. The walk also
// terminates (returning nil) if it runs into a pre-existing cycle that
// does not contain t: that deadlock was already detected when it formed,
// and t is merely queued behind it. Caller must hold c.mu exclusively.
func (c *Core) findCycleLocked(t, l *Node) []cycleLink {
	atomic.AddUint64(&c.stats.CycleWalks, 1)
	var links []cycleLink
	cur := l
	for {
		owner := cur.owner.Load()
		if owner == nil {
			return nil // lock free (or being handed over): no cycle
		}
		links = append(links, cycleLink{lock: cur, holder: owner})
		if owner == t {
			return links
		}
		next := owner.reqLock
		if next == nil {
			return nil // owner is running: chain ends
		}
		// Guard against walking a pre-existing cycle that excludes t.
		for _, seen := range links {
			if seen.lock == next {
				return nil
			}
		}
		cur = next
	}
}

// handleDeadlockLocked records the signature of a detected deadlock and
// applies the configured policy. Caller must hold c.mu. The returned error
// is non-nil only under PolicyFail.
func (c *Core) handleDeadlockLocked(t *Node, pos *Position, cycle []cycleLink) error {
	sig := c.buildSignatureLocked(t, pos, cycle)
	installed, fresh, err := c.installSignatureLocked(sig, true)
	if err != nil {
		// A signature built from live RAG state is always valid; failure
		// here indicates internal inconsistency. Count and continue: the
		// deadlock still manifests per policy.
		atomic.AddUint64(&c.stats.Misuse, 1)
		return nil
	}
	ev := Event{
		ThreadID:   t.id,
		ThreadName: t.name,
		Pos:        pos.key,
		Sig:        installed.snapshot(),
	}
	if fresh {
		atomic.AddUint64(&c.stats.DeadlocksDetected, 1)
		ev.Kind = EventDeadlockDetected
	} else {
		atomic.AddUint64(&installed.hits, 1)
		atomic.AddUint64(&c.stats.DuplicateDeadlocks, 1)
		ev.Kind = EventDuplicateDeadlock
	}
	c.emit(ev)
	if c.cfg.Policy == PolicyFail {
		return &DeadlockError{Sig: installed.snapshot()}
	}
	return nil
}

// buildSignatureLocked extracts the deadlock signature from a cycle: one
// (outer, inner) pair per deadlocked thread, where outer is the call stack
// with which the thread acquired the lock it holds inside the cycle
// (lock.acqPos) and inner is the thread's call stack at the moment of the
// deadlock (§2.2). The requesting thread t's inner stack is its current
// one; pos supplies its outer-position fallback if the stack capture
// function is absent.
func (c *Core) buildSignatureLocked(t *Node, pos *Position, cycle []cycleLink) *Signature {
	pairs := make([]SigPair, 0, len(cycle))
	for _, link := range cycle {
		outer := CallStack{{Class: "unknown", Method: "unknown", Line: 0}}
		if link.lock.acqPos != nil {
			outer = link.lock.acqPos.stack.Clone()
		}
		inner := link.holder.innerStack()
		if link.holder == t && len(inner) == 1 && inner[0].Class == "unknown" {
			// Without a stack capture function, the best inner
			// approximation for the requester is its requesting position.
			inner = pos.stack.Clone()
		}
		pairs = append(pairs, SigPair{Outer: outer, Inner: inner})
	}
	return &Signature{Kind: DeadlockSig, Pairs: pairs}
}
