package core

import (
	"strings"
	"testing"
)

// Accessor and Stringer coverage: small behaviours that diagnostics and
// the CLI tools depend on.

func TestEnumStrings(t *testing.T) {
	tests := []struct {
		got  string
		want string
	}{
		{DeadlockSig.String(), "deadlock"},
		{StarvationSig.String(), "starvation"},
		{SigKind(42).String(), "SigKind(42)"},
		{ThreadNode.String(), "thread"},
		{LockNode.String(), "lock"},
		{NodeKind(9).String(), "NodeKind(9)"},
		{PolicyFreeze.String(), "freeze"},
		{PolicyFail.String(), "fail"},
		{DeadlockPolicy(7).String(), "DeadlockPolicy(7)"},
		{StarvationCycle.String(), "cycle"},
		{StarvationTimeout.String(), "cycle+timeout"},
		{StarvationOff.String(), "off"},
		{StarvationMode(5).String(), "StarvationMode(5)"},
		{EventDeadlockDetected.String(), "deadlock-detected"},
		{EventSignatureLoaded.String(), "signature-loaded"},
		{EventYield.String(), "yield"},
		{EventResume.String(), "resume"},
		{EventStarvation.String(), "starvation"},
		{EventDuplicateDeadlock.String(), "duplicate-deadlock"},
		{EventKind(12).String(), "EventKind(12)"},
	}
	for _, tc := range tests {
		if tc.got != tc.want {
			t.Errorf("got %q, want %q", tc.got, tc.want)
		}
	}
}

func TestNodeAccessors(t *testing.T) {
	h := newHarness(t)
	n := h.thread("worker")
	if n.Kind() != ThreadNode {
		t.Errorf("Kind = %v", n.Kind())
	}
	if n.ID() == 0 {
		t.Error("ID must be assigned")
	}
	if n.Name() != "worker" {
		t.Errorf("Name = %q", n.Name())
	}
	if s := n.String(); !strings.Contains(s, "worker") || !strings.Contains(s, "thread") {
		t.Errorf("String = %q", s)
	}
}

func TestDeadlockErrorMessage(t *testing.T) {
	e := &DeadlockError{Sig: SignatureInfo{ID: 3, Kind: DeadlockSig}}
	if msg := e.Error(); !strings.Contains(msg, "deadlock detected") {
		t.Errorf("Error = %q", msg)
	}
}

func TestEventString(t *testing.T) {
	ev := Event{
		Kind:       EventYield,
		ThreadID:   7,
		ThreadName: "binder",
		Pos:        "a.B.m:1",
		Sig:        SignatureInfo{ID: 2, Kind: DeadlockSig},
	}
	s := ev.String()
	for _, needle := range []string{"yield", "binder", "a.B.m:1", "deadlock#2"} {
		if !strings.Contains(s, needle) {
			t.Errorf("Event.String() missing %q: %q", needle, s)
		}
	}
}

func TestCoreConfigAccessor(t *testing.T) {
	h := newHarness(t, WithOuterDepth(3))
	if got := h.c.Config().OuterDepth; got != 3 {
		t.Errorf("Config().OuterDepth = %d, want 3", got)
	}
}

func TestSignatureIDBeforeInstall(t *testing.T) {
	sig := sigOf(DeadlockSig, fr("a.B", "m", 1), fr("c.D", "n", 2))
	if sig.ID() != -1 {
		t.Errorf("uninstalled signature ID = %d, want -1", sig.ID())
	}
	h := newHarness(t)
	mustAdd(t, h.c, sig)
	// The installed copy carries an id; the original is untouched.
	if h.c.History()[0].ID != 0 {
		t.Errorf("installed ID = %d, want 0", h.c.History()[0].ID)
	}
}

func TestFileHistoryPathAndFsync(t *testing.T) {
	fh := NewFileHistory("/tmp/x.hist", WithFsync())
	if fh.Path() != "/tmp/x.hist" {
		t.Errorf("Path = %q", fh.Path())
	}
}

func TestAbortMismatchedLock(t *testing.T) {
	h := newHarness(t)
	th := h.thread("t")
	l1, l2 := h.lock("l1"), h.lock("l2")
	p := h.pos("A", "m", 1)
	if err := h.c.Request(th, l1, p); err != nil {
		t.Fatal(err)
	}
	// Aborting a different lock is a misuse, tolerated without corrupting
	// the pending request.
	h.c.Abort(th, l2)
	if st := h.c.Stats(); st.Misuse == 0 {
		t.Error("mismatched abort must count as misuse")
	}
	if th.reqLock != l1 {
		t.Error("mismatched abort must not clear the real request")
	}
	h.c.Abort(th, l1)
	if th.reqLock != nil {
		t.Error("matched abort must clear the request")
	}
}

func TestEncodeHistoryRejectsInvalid(t *testing.T) {
	var sb strings.Builder
	err := EncodeHistory(&sb, []*Signature{{Kind: DeadlockSig}})
	if err == nil {
		t.Error("encoding an invalid signature must fail")
	}
}
