package core

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Frame identifies a single program location: a method in a class plus a
// line number. Frames are the unit from which call stacks, positions, and
// ultimately deadlock signatures are built. In the paper's Dalvik
// implementation a frame corresponds to a (method, pc) pair obtained by
// dvmGetCallStack; here frames are pushed explicitly by the simulated
// platform and application code, which makes positions stable across runs —
// a requirement for the persistent deadlock history to be useful after a
// reboot.
type Frame struct {
	// Class is the fully qualified class name, e.g.
	// "com.android.server.NotificationManagerService".
	Class string
	// Method is the method name within Class.
	Method string
	// Line is the source line of the synchronization statement.
	Line int
}

// frameSeparator joins frames within one encoded call stack.
const frameSeparator = ";"

// reservedFrameChars are characters that cannot appear in Class or Method
// because they structure the history file format.
const reservedFrameChars = " \t\n;|="

// Validate reports whether the frame can be safely encoded in a history
// file. Class and Method must be non-empty and must not contain whitespace
// or the reserved characters ';', '|', '='. Line must be non-negative.
func (f Frame) Validate() error {
	if f.Class == "" {
		return errors.New("frame: empty class")
	}
	if f.Method == "" {
		return errors.New("frame: empty method")
	}
	if strings.ContainsAny(f.Class, reservedFrameChars) {
		return fmt.Errorf("frame: class %q contains reserved characters", f.Class)
	}
	if strings.ContainsAny(f.Method, reservedFrameChars) {
		return fmt.Errorf("frame: method %q contains reserved characters", f.Method)
	}
	if f.Line < 0 {
		return fmt.Errorf("frame: negative line %d", f.Line)
	}
	return nil
}

// String renders the frame as "Class.Method:Line", the canonical encoding
// used in history files and diagnostics.
func (f Frame) String() string {
	var b strings.Builder
	b.Grow(len(f.Class) + len(f.Method) + 8)
	b.WriteString(f.Class)
	b.WriteByte('.')
	b.WriteString(f.Method)
	b.WriteByte(':')
	b.WriteString(strconv.Itoa(f.Line))
	return b.String()
}

// ParseFrame parses the "Class.Method:Line" encoding produced by
// Frame.String. The method name is the segment after the last '.' before
// the final ':'; everything before it is the class.
func ParseFrame(s string) (Frame, error) {
	colon := strings.LastIndexByte(s, ':')
	if colon < 0 {
		return Frame{}, fmt.Errorf("parse frame %q: missing ':'", s)
	}
	line, err := strconv.Atoi(s[colon+1:])
	if err != nil {
		return Frame{}, fmt.Errorf("parse frame %q: bad line number: %w", s, err)
	}
	head := s[:colon]
	dot := strings.LastIndexByte(head, '.')
	if dot <= 0 || dot == len(head)-1 {
		return Frame{}, fmt.Errorf("parse frame %q: missing class or method", s)
	}
	f := Frame{Class: head[:dot], Method: head[dot+1:], Line: line}
	if err := f.Validate(); err != nil {
		return Frame{}, fmt.Errorf("parse frame %q: %w", s, err)
	}
	return f, nil
}

// CallStack is a sequence of frames, innermost (top of stack) first.
// The top frame of an outer call stack is the paper's "outer position",
// i.e. the lock statement itself.
type CallStack []Frame

// Top returns the innermost frame. It must not be called on an empty stack;
// callers in this package guard against that.
func (cs CallStack) Top() Frame { return cs[0] }

// Key returns the canonical string encoding of the stack: frames joined by
// ';', innermost first. Keys identify positions in the intern table and in
// history files.
func (cs CallStack) Key() string {
	switch len(cs) {
	case 0:
		return ""
	case 1:
		return cs[0].String()
	}
	var b strings.Builder
	for i, f := range cs {
		if i > 0 {
			b.WriteString(frameSeparator)
		}
		b.WriteString(f.String())
	}
	return b.String()
}

// Truncate returns the stack limited to at most depth frames (from the
// top). Depth values below 1 are treated as 1, matching the paper's
// depth-1 outer call stacks. The result aliases the receiver.
func (cs CallStack) Truncate(depth int) CallStack {
	if depth < 1 {
		depth = 1
	}
	if len(cs) <= depth {
		return cs
	}
	return cs[:depth]
}

// Clone returns an independent copy of the stack. Positions store cloned
// stacks because capture buffers are reused by the VM (the paper's
// Thread.stackBuffer optimization).
func (cs CallStack) Clone() CallStack {
	if cs == nil {
		return nil
	}
	out := make(CallStack, len(cs))
	copy(out, cs)
	return out
}

// Equal reports whether two stacks contain the same frames in order.
func (cs CallStack) Equal(other CallStack) bool {
	if len(cs) != len(other) {
		return false
	}
	for i := range cs {
		if cs[i] != other[i] {
			return false
		}
	}
	return true
}

// Validate checks every frame and requires at least one frame.
func (cs CallStack) Validate() error {
	if len(cs) == 0 {
		return errors.New("call stack: empty")
	}
	for i, f := range cs {
		if err := f.Validate(); err != nil {
			return fmt.Errorf("call stack frame %d: %w", i, err)
		}
	}
	return nil
}

// ParseCallStack parses the ';'-joined encoding produced by Key.
func ParseCallStack(s string) (CallStack, error) {
	if s == "" {
		return nil, errors.New("parse call stack: empty input")
	}
	parts := strings.Split(s, frameSeparator)
	cs := make(CallStack, 0, len(parts))
	for _, p := range parts {
		f, err := ParseFrame(p)
		if err != nil {
			return nil, fmt.Errorf("parse call stack: %w", err)
		}
		cs = append(cs, f)
	}
	return cs, nil
}
