package core

import (
	"sync"
	"testing"
)

// Tests for outer-depth > 1 configurations (ablation A1's correctness
// side: deeper stacks distinguish call contexts end to end, from capture
// through detection to avoidance).

func TestDeepOuterStacksInSignatures(t *testing.T) {
	h := newHarness(t, WithOuterDepth(2), WithAvoidance(false))
	t1, t2 := h.thread("t1"), h.thread("t2")
	lA, lB := h.lock("A"), h.lock("B")

	deepA, err := h.c.Intern(stackOf(fr("wrap.Lock", "lock", 7), fr("app.JobA", "run", 10)))
	if err != nil {
		t.Fatal(err)
	}
	deepB, err := h.c.Intern(stackOf(fr("wrap.Lock", "lock", 7), fr("app.JobB", "run", 20)))
	if err != nil {
		t.Fatal(err)
	}
	inner := h.pos("X", "in", 9)

	h.acquire(t1, lA, deepA)
	h.acquire(t2, lB, deepB)
	if err := h.c.Request(t1, lB, inner); err != nil {
		t.Fatal(err)
	}
	if err := h.c.Request(t2, lA, inner); err != nil {
		t.Fatal(err)
	}
	if h.c.HistorySize() != 1 {
		t.Fatal("deadlock not detected")
	}
	info := h.c.History()[0]
	for _, pair := range info.Pairs {
		if len(pair.Outer) != 2 {
			t.Errorf("outer stack depth = %d, want 2 (full context)", len(pair.Outer))
		}
		if pair.Outer[0].Class != "wrap.Lock" {
			t.Errorf("outer top frame = %v, want the wrapper", pair.Outer[0])
		}
	}
}

// TestDepth2AvoidanceDistinguishesCallers: with a depth-2 signature over
// two caller contexts, a *third* caller using the same wrapper must not
// yield (the custom-wrapper example's fix, verified at core level).
func TestDepth2AvoidanceDistinguishesCallers(t *testing.T) {
	h := newHarness(t, WithOuterDepth(2))
	sig := &Signature{
		Kind: DeadlockSig,
		Pairs: []SigPair{
			{Outer: stackOf(fr("wrap.Lock", "lock", 7), fr("app.JobA", "run", 10)), Inner: stackOf(fr("app.JobA", "run", 10))},
			{Outer: stackOf(fr("wrap.Lock", "lock", 7), fr("app.JobB", "run", 20)), Inner: stackOf(fr("app.JobB", "run", 20))},
		},
	}
	if _, _, err := h.c.AddSignature(sig); err != nil {
		t.Fatal(err)
	}

	t1, t3 := h.thread("t1"), h.thread("t3")
	lA, lC := h.lock("A"), h.lock("C")
	posA, err := h.c.Intern(stackOf(fr("wrap.Lock", "lock", 7), fr("app.JobA", "run", 10)))
	if err != nil {
		t.Fatal(err)
	}
	posC, err := h.c.Intern(stackOf(fr("wrap.Lock", "lock", 7), fr("app.JobC", "run", 30)))
	if err != nil {
		t.Fatal(err)
	}

	h.acquire(t1, lA, posA) // occupies signature slot 1
	// JobC's context is NOT in the signature: no yield even though the
	// wrapper frame matches.
	h.acquire(t3, lC, posC)
	if st := h.c.Stats(); st.Yields != 0 {
		t.Errorf("depth-2 avoidance yielded for an unrelated caller: %+v", st)
	}

	// But with depth 1 the same situation serializes (the pitfall).
	h1 := newHarness(t, WithOuterDepth(1))
	if _, _, err := h1.c.AddSignature(sig); err != nil { // truncated to wrapper frame
		t.Fatal(err)
	}
	u1, u3 := h1.thread("u1"), h1.thread("u3")
	mA, mC := h1.lock("A"), h1.lock("C")
	wrapPos, err := h1.c.Intern(stackOf(fr("wrap.Lock", "lock", 7)))
	if err != nil {
		t.Fatal(err)
	}
	h1.acquire(u1, mA, wrapPos)
	done := make(chan error, 1)
	go func() { done <- h1.c.Request(u3, mC, wrapPos) }()
	waitUntil(t, "depth-1 false-positive yield", func() bool { return h1.c.Stats().Yields == 1 })
	h1.release(u1, mA)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestInternConcurrentSameKey: racing interns of one key must converge on
// a single Position.
func TestInternConcurrentSameKey(t *testing.T) {
	h := newHarness(t)
	const workers = 8
	results := make([]*Position, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := h.c.Intern(stackOf(fr("race.C", "m", 5)))
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = p
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if results[i] != results[0] {
			t.Fatal("concurrent interns produced distinct Positions")
		}
	}
	if h.c.PositionCount() != 1 {
		t.Errorf("PositionCount = %d, want 1", h.c.PositionCount())
	}
}

// TestDuplicateSignatureAcrossDepths: a deep signature loaded into a
// depth-1 core deduplicates against its truncated form.
func TestDuplicateSignatureAcrossDepths(t *testing.T) {
	h := newHarness(t, WithOuterDepth(1))
	deep := &Signature{
		Kind: DeadlockSig,
		Pairs: []SigPair{
			{Outer: stackOf(fr("a.B", "m", 1), fr("x.Y", "r", 2)), Inner: stackOf(fr("a.B", "m", 1))},
			{Outer: stackOf(fr("c.D", "n", 3), fr("z.W", "s", 4)), Inner: stackOf(fr("c.D", "n", 3))},
		},
	}
	if _, fresh, err := h.c.AddSignature(deep); err != nil || !fresh {
		t.Fatalf("first add: fresh=%v err=%v", fresh, err)
	}
	shallow := sigOf(DeadlockSig, fr("a.B", "m", 1), fr("c.D", "n", 3))
	if _, fresh, err := h.c.AddSignature(shallow); err != nil {
		t.Fatal(err)
	} else if fresh {
		t.Error("truncated duplicate must not install twice at depth 1")
	}
}
