package core

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func sampleSigs() []*Signature {
	return []*Signature{
		{
			Kind: DeadlockSig,
			Pairs: []SigPair{
				{Outer: stackOf(fr("a.B", "m", 1)), Inner: stackOf(fr("a.B", "m", 1), fr("x.Y", "run", 7))},
				{Outer: stackOf(fr("c.D", "n", 2)), Inner: stackOf(fr("c.D", "n", 2))},
			},
		},
		{
			Kind: StarvationSig,
			Pairs: []SigPair{
				{Outer: stackOf(fr("e.F", "o", 3)), Inner: stackOf(fr("e.F", "o", 3))},
			},
		},
	}
}

func TestHistoryEncodeDecodeRoundTrip(t *testing.T) {
	sigs := sampleSigs()
	var buf bytes.Buffer
	if err := EncodeHistory(&buf, sigs); err != nil {
		t.Fatalf("EncodeHistory: %v", err)
	}
	got, skipped, err := DecodeHistory(&buf, false)
	if err != nil {
		t.Fatalf("DecodeHistory: %v", err)
	}
	if skipped != 0 {
		t.Errorf("skipped = %d, want 0", skipped)
	}
	if len(got) != len(sigs) {
		t.Fatalf("decoded %d signatures, want %d", len(got), len(sigs))
	}
	for i := range sigs {
		if got[i].Key() != sigs[i].Key() {
			t.Errorf("sig %d key = %q, want %q", i, got[i].Key(), sigs[i].Key())
		}
		for j := range sigs[i].Pairs {
			if !got[i].Pairs[j].Inner.Equal(sigs[i].Pairs[j].Inner) {
				t.Errorf("sig %d pair %d inner mismatch", i, j)
			}
		}
	}
}

func TestDecodeHistoryEmpty(t *testing.T) {
	got, skipped, err := DecodeHistory(strings.NewReader(""), false)
	if err != nil || skipped != 0 || len(got) != 0 {
		t.Errorf("empty input: got %v, %d, %v; want empty history", got, skipped, err)
	}
}

func TestDecodeHistoryBadHeader(t *testing.T) {
	_, _, err := DecodeHistory(strings.NewReader("#not-a-history\n"), false)
	if !errors.Is(err, ErrHistoryFormat) {
		t.Errorf("bad header: err = %v, want ErrHistoryFormat", err)
	}
}

func TestDecodeHistoryCorruptBlocks(t *testing.T) {
	corrupt := []string{
		historyHeader + "\nsig deadlock\npair outer=a.B.m:1 inner=a.B.m:1\n", // truncated: no end
		historyHeader + "\nsig bogus\nend\n",                                 // unknown kind
		historyHeader + "\nsig deadlock\nend\n",                              // too few pairs
		historyHeader + "\nsig deadlock\npair outer=??? inner=a.B.m:1\npair outer=a.B.m:1 inner=a.B.m:1\nend\n",
		historyHeader + "\ngarbage line\n",
	}
	for i, in := range corrupt {
		if _, _, err := DecodeHistory(strings.NewReader(in), false); !errors.Is(err, ErrHistoryFormat) {
			t.Errorf("case %d strict: err = %v, want ErrHistoryFormat", i, err)
		}
	}
}

func TestDecodeHistoryLenientSkipsTornTail(t *testing.T) {
	// A valid signature followed by a torn (crash-truncated) block: lenient
	// load must keep the prefix — the phone must boot with the antibodies
	// it has.
	var buf bytes.Buffer
	if err := EncodeHistory(&buf, sampleSigs()[:1]); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("sig deadlock\npair outer=a.B.m:1 inner=a.B.m:1\n") // torn
	got, skipped, err := DecodeHistory(&buf, true)
	if err != nil {
		t.Fatalf("lenient decode: %v", err)
	}
	if len(got) != 1 || skipped != 1 {
		t.Errorf("got %d sigs, %d skipped; want 1 and 1", len(got), skipped)
	}
}

func TestFileHistoryMissingFileIsEmpty(t *testing.T) {
	fh := NewFileHistory(filepath.Join(t.TempDir(), "none.hist"))
	sigs, err := fh.Load()
	if err != nil || len(sigs) != 0 {
		t.Errorf("missing file: got %v, %v; want empty, nil", sigs, err)
	}
}

func TestFileHistoryAppendLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dimmunix.hist")
	fh := NewFileHistory(path)
	for _, s := range sampleSigs() {
		if err := fh.Append(s); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	got, err := fh.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("loaded %d sigs, want 2", len(got))
	}
	// The header must appear exactly once even across multiple appends.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(raw), historyHeader); n != 1 {
		t.Errorf("header appears %d times, want 1", n)
	}
}

func TestFileHistoryAppendInvalid(t *testing.T) {
	fh := NewFileHistory(filepath.Join(t.TempDir(), "x.hist"))
	if err := fh.Append(&Signature{Kind: DeadlockSig}); err == nil {
		t.Error("appending an invalid signature must fail")
	}
}

func TestFileHistoryLenientOption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.hist")
	content := historyHeader + "\nsig deadlock\npair outer=a.B.m:1 inner=a.B.m:1\npair outer=c.D.n:2 inner=c.D.n:2\nend\nsig deadlock\npair outer=torn"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFileHistory(path).Load(); err == nil {
		t.Error("strict load of torn file must fail")
	}
	sigs, err := NewFileHistory(path, WithLenientLoad()).Load()
	if err != nil {
		t.Fatalf("lenient load: %v", err)
	}
	if len(sigs) != 1 {
		t.Errorf("lenient load got %d sigs, want 1", len(sigs))
	}
}

func TestMemHistoryIsolation(t *testing.T) {
	m := NewMemHistory()
	orig := sampleSigs()[0]
	if err := m.Append(orig); err != nil {
		t.Fatal(err)
	}
	got, err := m.Load()
	if err != nil {
		t.Fatal(err)
	}
	got[0].Pairs[0].Outer[0].Line = 424242
	reloaded, err := m.Load()
	if err != nil {
		t.Fatal(err)
	}
	if reloaded[0].Pairs[0].Outer[0].Line == 424242 {
		t.Error("MemHistory must not alias loaded signatures")
	}
	if m.Len() != 1 {
		t.Errorf("Len = %d, want 1", m.Len())
	}
}

// genSignature builds a random valid signature for the round-trip property.
func genSignature(r *rand.Rand) *Signature {
	kind := DeadlockSig
	minPairs := 2
	if r.Intn(2) == 0 {
		kind = StarvationSig
		minPairs = 1
	}
	n := minPairs + r.Intn(3)
	sig := &Signature{Kind: kind}
	for i := 0; i < n; i++ {
		outer := CallStack{genFrame(r)}
		innerDepth := 1 + r.Intn(4)
		inner := make(CallStack, innerDepth)
		for j := range inner {
			inner[j] = genFrame(r)
		}
		sig.Pairs = append(sig.Pairs, SigPair{Outer: outer, Inner: inner})
	}
	return sig
}

func TestHistoryRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		sigs := make([]*Signature, n)
		for i := range sigs {
			sigs[i] = genSignature(r)
		}
		var buf bytes.Buffer
		if err := EncodeHistory(&buf, sigs); err != nil {
			return false
		}
		got, skipped, err := DecodeHistory(&buf, false)
		if err != nil || skipped != 0 || len(got) != n {
			return false
		}
		for i := range sigs {
			if got[i].Key() != sigs[i].Key() || got[i].Kind != sigs[i].Kind {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSignatureKeyOrderIndependent(t *testing.T) {
	a := sigOf(DeadlockSig, fr("a.B", "m", 1), fr("c.D", "n", 2))
	b := sigOf(DeadlockSig, fr("c.D", "n", 2), fr("a.B", "m", 1))
	if a.Key() != b.Key() {
		t.Error("signature key must not depend on pair order")
	}
	c := sigOf(StarvationSig, fr("a.B", "m", 1), fr("c.D", "n", 2))
	if a.Key() == c.Key() {
		t.Error("signature key must include the kind")
	}
}

func TestSignatureValidate(t *testing.T) {
	if err := sigOf(DeadlockSig, fr("a.B", "m", 1)).Validate(); err == nil {
		t.Error("1-pair deadlock signature must not validate")
	}
	if err := sigOf(StarvationSig, fr("a.B", "m", 1)).Validate(); err != nil {
		t.Errorf("1-pair starvation signature must validate: %v", err)
	}
	if err := (&Signature{Kind: SigKind(99), Pairs: []SigPair{{Outer: stackOf(fr("a.B", "m", 1)), Inner: stackOf(fr("a.B", "m", 1))}}}).Validate(); err == nil {
		t.Error("unknown kind must not validate")
	}
}

// FuzzHistoryParse fuzzes the persistent history file parser. For any
// input (corrupt, truncated, duplicated, binary garbage) the parser must
// not panic; in lenient mode it must always produce a usable (possibly
// empty) history — the phone must keep booting even off a torn file — and
// everything it accepts must re-encode and re-parse to the same
// signatures (round-trip stability, the property the persistent store
// depends on across reboots).
func FuzzHistoryParse(f *testing.F) {
	var valid strings.Builder
	if err := EncodeHistory(&valid, sampleSigs()); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.String())
	f.Add("")
	f.Add("#dimmunix-history v1\n")
	// Truncated mid-block (torn final write).
	f.Add("#dimmunix-history v1\nsig deadlock\npair outer=A.b:1 inner=A.b:1\n")
	// Duplicate signatures back to back.
	f.Add("#dimmunix-history v1\n" +
		"sig deadlock\npair outer=A.b:1 inner=A.b:1\npair outer=C.d:2 inner=C.d:2\nend\n" +
		"sig deadlock\npair outer=A.b:1 inner=A.b:1\npair outer=C.d:2 inner=C.d:2\nend\n")
	// Wrong header, stray tokens, malformed pairs, bad kinds.
	f.Add("#dimmunix-history v2\nsig deadlock\nend\n")
	f.Add("#dimmunix-history v1\ngarbage line\nsig starvation\npair outer=A.b:1 inner=A.b:1\nend\n")
	f.Add("#dimmunix-history v1\nsig deadlock\npair outer= inner=\nend\n")
	f.Add("#dimmunix-history v1\nsig wat\npair outer=A.b:1 inner=A.b:1\nend\n")
	f.Add("#dimmunix-history v1\nsig deadlock\npair outer=A.b:one inner=A.b:1\nend\nsig\n")
	f.Add("\x00\xff\xfe#dimmunix-history v1\n")

	f.Fuzz(func(t *testing.T, input string) {
		// Strict mode: must not panic; error or signature list both fine.
		strictSigs, _, strictErr := DecodeHistory(strings.NewReader(input), false)
		// Lenient mode: must not panic and must never fail on any input
		// short of scanner-level errors (which a string reader cannot
		// produce for inputs under the scanner's buffer cap).
		lenientSigs, skipped, lenientErr := DecodeHistory(strings.NewReader(input), true)
		if len(input) < 512*1024 {
			if lenientErr != nil && !errors.Is(lenientErr, ErrHistoryFormat) {
				t.Fatalf("lenient decode failed unexpectedly: %v", lenientErr)
			}
		}
		if strictErr == nil && skipped == 0 && len(strictSigs) != len(lenientSigs) {
			t.Fatalf("strict accepted %d sigs, lenient %d with nothing skipped",
				len(strictSigs), len(lenientSigs))
		}

		// Everything accepted must validate and round-trip.
		for _, sigs := range [][]*Signature{strictSigs, lenientSigs} {
			if strictErr != nil && len(sigs) == 0 {
				continue
			}
			for i, s := range sigs {
				if err := s.Validate(); err != nil {
					t.Fatalf("accepted signature %d does not validate: %v", i, err)
				}
			}
			var reenc strings.Builder
			if err := EncodeHistory(&reenc, sigs); err != nil {
				t.Fatalf("re-encode of accepted history failed: %v", err)
			}
			again, reSkipped, err := DecodeHistory(strings.NewReader(reenc.String()), false)
			if err != nil || reSkipped != 0 {
				t.Fatalf("re-decode failed: err=%v skipped=%d", err, reSkipped)
			}
			if len(again) != len(sigs) {
				t.Fatalf("round trip lost signatures: %d -> %d", len(sigs), len(again))
			}
			for i := range sigs {
				if sigs[i].Key() != again[i].Key() {
					t.Fatalf("signature %d key changed across round trip:\n%s\n%s",
						i, sigs[i].Key(), again[i].Key())
				}
			}
		}
	})
}
