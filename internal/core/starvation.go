package core

import (
	"sync/atomic"
	"time"
)

// Starvation (avoidance-induced deadlock) handling. A yield suspends a
// thread until the matched instantiation dissolves; if the threads that
// would dissolve it are themselves (transitively) blocked on the yielder,
// nothing can make progress — an avoidance-induced deadlock (§2.2). The
// core detects these as cycles through yield edges in the waits-for
// relation:
//
//   - a yielding thread waits for each witness of its yield,
//   - a thread approved for a lock waits for the lock's current owner.
//
// Edges only appear on yields, approvals, and ownership transfers, so the
// scan runs at exactly those points (plus the optional watchdog):
// avoidLocked checks before suspending, and Request/Acquired re-scan all
// yielders after adding edges. When a cycle is found, the starvation
// signature (the yield's position pattern) is saved — arming the yield
// suppression in avoid.go — and the yielding thread is force-resumed,
// matching the paper: "when starvation occurs, Dimmunix saves the
// signature of the avoidance-induced deadlock, and resumes the suspended
// thread."

// wouldStarveLocked reports whether suspending t with the given witnesses
// would complete a waits-for cycle, i.e. some witness already transitively
// waits for t. Caller must hold c.mu.
func (c *Core) wouldStarveLocked(t *Node, witnesses map[*Node]*Position) bool {
	if c.cfg.Starvation == StarvationOff {
		return false
	}
	visited := make(map[*Node]bool, 8)
	for w := range witnesses {
		if c.reachesLocked(w, t, visited) {
			return true
		}
	}
	return false
}

// reachesLocked performs a DFS over the thread waits-for relation, asking
// whether `from` transitively waits for `target`.
func (c *Core) reachesLocked(from, target *Node, visited map[*Node]bool) bool {
	if from == target {
		return true
	}
	if visited[from] {
		return false
	}
	visited[from] = true
	if from.yield != nil {
		for w := range from.yield.witnesses {
			if c.reachesLocked(w, target, visited) {
				return true
			}
		}
	}
	if from.reqLock != nil {
		if owner := from.reqLock.owner.Load(); owner != nil {
			if c.reachesLocked(owner, target, visited) {
				return true
			}
		}
	}
	return false
}

// scanYieldersLocked re-checks every suspended thread for a completed
// starvation cycle and force-resumes the starved ones. Called after new
// waits-for edges appear (approval, acquisition) and by the watchdog.
// Cheap when nothing yields: a single map-length check.
func (c *Core) scanYieldersLocked() {
	if len(c.yielders) == 0 || c.cfg.Starvation == StarvationOff {
		return
	}
	for y, rec := range c.yielders {
		if y.forceResume {
			continue
		}
		if c.wouldStarveLocked(y, rec.witnesses) {
			c.recordStarvationLocked(y, rec.pos, rec.witnesses)
			c.forceResumeLocked(y, rec)
		}
	}
}

// timeoutYieldersLocked applies the StarvationTimeout fallback: any yield
// older than the configured timeout is declared starved. Conservative —
// used when the embedding cannot tolerate long suspensions even in
// patterns the cycle detector cannot see (e.g. a witness blocked in
// external code).
func (c *Core) timeoutYieldersLocked(now time.Time) {
	for y, rec := range c.yielders {
		if y.forceResume {
			continue
		}
		if now.Sub(rec.since) >= c.cfg.YieldTimeout {
			c.recordStarvationLocked(y, rec.pos, rec.witnesses)
			c.forceResumeLocked(y, rec)
		}
	}
}

// forceResumeLocked wakes a yielding thread unconditionally. The thread's
// avoidance loop observes forceResume and proceeds.
func (c *Core) forceResumeLocked(y *Node, rec *yieldRecord) {
	y.forceResume = true
	atomic.AddUint64(&c.stats.ForcedResumes, 1)
	rec.sig.cond.Broadcast()
}

// recordStarvationLocked builds, installs and persists the signature of an
// avoidance-induced deadlock: the yielding thread's requesting position
// plus the witness positions — exactly the pattern avoid.go suppresses on
// future requests. Caller must hold c.mu.
func (c *Core) recordStarvationLocked(t *Node, pos *Position, witnesses map[*Node]*Position) {
	pairs := make([]SigPair, 0, len(witnesses)+1)
	pairs = append(pairs, SigPair{Outer: pos.stack.Clone(), Inner: t.innerStack()})
	for _, w := range sortedWitnesses(witnesses) {
		pairs = append(pairs, SigPair{Outer: witnesses[w].stack.Clone(), Inner: w.innerStack()})
	}
	sig := &Signature{Kind: StarvationSig, Pairs: pairs}
	installed, fresh, err := c.installSignatureLocked(sig, true)
	if err != nil {
		atomic.AddUint64(&c.stats.Misuse, 1)
		return
	}
	atomic.AddUint64(&c.stats.Starvations, 1)
	if !fresh {
		atomic.AddUint64(&installed.hits, 1)
	}
	c.emit(Event{
		Kind:       EventStarvation,
		Sig:        installed.snapshot(),
		ThreadID:   t.id,
		ThreadName: t.name,
		Pos:        pos.key,
	})
}
