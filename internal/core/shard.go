package core

import (
	"sync"
	"sync/atomic"
)

// Sharded position intern table. Interning runs on every monitorenter, so
// it must never contend with the engine lock: the table is split into
// posShardCount lock-striped shards keyed by an FNV-1a hash of the
// call-stack key. A lookup takes one shard read-lock; only the first
// intern of a new position takes a shard write-lock. No shard lock is ever
// held while acquiring another lock (shard locks are leaves in the lock
// order, see the package comment in core.go).
const posShardCount = 64 // power of two, so the hash folds with a mask

// posShard is one stripe of the intern table.
type posShard struct {
	mu sync.RWMutex
	m  map[string]*Position
}

// posTable is the per-core sharded positions map (the paper's global
// positions map, striped).
type posTable struct {
	shards [posShardCount]posShard
	// seq hands out stable intern-order indices for diagnostics.
	seq atomic.Int64
}

// newPosTable builds an empty table.
func newPosTable() *posTable {
	pt := &posTable{}
	for i := range pt.shards {
		pt.shards[i].m = make(map[string]*Position)
	}
	return pt
}

// shardFor hashes a position key to its shard (FNV-1a).
func (pt *posTable) shardFor(key string) *posShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return &pt.shards[h&(posShardCount-1)]
}

// intern returns the unique Position for the (already depth-truncated)
// stack, creating it on first use. The stack is cloned when a new Position
// is created, so callers may reuse their capture buffers.
func (pt *posTable) intern(stack CallStack) *Position {
	key := stack.Key()
	sh := pt.shardFor(key)
	sh.mu.RLock()
	p, ok := sh.m[key]
	sh.mu.RUnlock()
	if ok {
		return p
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if p, ok := sh.m[key]; ok {
		return p
	}
	p = &Position{key: key, stack: stack.Clone(), seq: pt.seq.Add(1) - 1}
	sh.m[key] = p
	return p
}

// count returns the number of interned positions.
func (pt *posTable) count() int {
	n := 0
	for i := range pt.shards {
		sh := &pt.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// forEach visits every interned position under the shard read-locks.
// Callers that also inspect queue state must hold the engine lock
// exclusively to freeze it.
func (pt *posTable) forEach(fn func(key string, p *Position)) {
	for i := range pt.shards {
		sh := &pt.shards[i]
		sh.mu.RLock()
		for k, p := range sh.m {
			fn(k, p)
		}
		sh.mu.RUnlock()
	}
}
