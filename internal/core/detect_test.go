package core

import (
	"errors"
	"testing"
)

// buildABBA sets up the classic two-thread, two-lock inversion right up to
// the closing request: t1 holds A (at p1) and is approved to wait for B
// (at p1in); t2 holds B (at p2). The returned closing call is t2
// requesting A.
func buildABBA(h *harness) (t2, lockA *Node, p2in *Position) {
	t1 := h.thread("t1")
	t2 = h.thread("t2")
	lockA = h.lock("A")
	lockB := h.lock("B")
	p1 := h.pos("Svc1", "outer", 10)
	p2 := h.pos("Svc2", "outer", 20)
	p1in := h.pos("Svc1", "inner", 11)
	p2in = h.pos("Svc2", "inner", 21)

	h.acquire(t1, lockA, p1)
	h.acquire(t2, lockB, p2)
	// t1 requests B: approved (no cycle yet), would block on the monitor.
	if err := h.c.Request(t1, lockB, p1in); err != nil {
		h.t.Fatalf("t1 request B: %v", err)
	}
	return t2, lockA, p2in
}

func TestDetectABBADeadlock(t *testing.T) {
	h := newHarness(t, WithAvoidance(false))
	rec := recordEvents(t, h.c)
	t2, lockA, p2in := buildABBA(h)

	// t2 requests A: closes the cycle. PolicyFreeze: the call succeeds (the
	// deadlock is allowed to manifest) but the signature must be recorded.
	if err := h.c.Request(t2, lockA, p2in); err != nil {
		t.Fatalf("closing request: %v", err)
	}
	st := h.c.Stats()
	if st.DeadlocksDetected != 1 {
		t.Fatalf("DeadlocksDetected = %d, want 1", st.DeadlocksDetected)
	}
	if h.c.HistorySize() != 1 {
		t.Fatalf("history size = %d, want 1", h.c.HistorySize())
	}
	info := h.c.History()[0]
	if info.Kind != DeadlockSig || len(info.Pairs) != 2 {
		t.Fatalf("signature = %v, want 2-pair deadlock", info)
	}
	// Outer positions must be the acquisition sites of the two held locks.
	outs := map[string]bool{}
	for _, p := range info.Pairs {
		outs[p.Outer.Key()] = true
	}
	if !outs["test.Svc1.outer:10"] || !outs["test.Svc2.outer:20"] {
		t.Errorf("outer positions = %v, want the two acquisition sites", outs)
	}

	_ = h.c.Close()
	<-rec.done
	if rec.count(EventDeadlockDetected) != 1 {
		t.Errorf("EventDeadlockDetected count = %d, want 1", rec.count(EventDeadlockDetected))
	}
}

func TestDetectPolicyFail(t *testing.T) {
	h := newHarness(t, WithPolicy(PolicyFail), WithAvoidance(false))
	t2, lockA, p2in := buildABBA(h)

	err := h.c.Request(t2, lockA, p2in)
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("closing request err = %v, want *DeadlockError", err)
	}
	if len(de.Sig.Pairs) != 2 {
		t.Errorf("error signature pairs = %d, want 2", len(de.Sig.Pairs))
	}
	// The failed request must not leave a request edge or queue entry.
	if t2.reqLock != nil {
		t.Error("failed request left a request edge")
	}
	if p2in.occupants() != 0 {
		t.Error("failed request left a queue entry")
	}
}

func TestDetectDuplicateDeadlock(t *testing.T) {
	// The same bug detected twice records one signature and counts a
	// duplicate (the phone froze again before the fix was armed, e.g.
	// avoidance disabled).
	store := NewMemHistory()
	h := newHarness(t, WithAvoidance(false), WithStore(store), WithPolicy(PolicyFail))
	t2, lockA, p2in := buildABBA(h)
	if err := h.c.Request(t2, lockA, p2in); err == nil {
		t.Fatal("expected deadlock error")
	}

	// Second identical attempt in the same process: t2 retries.
	if err := h.c.Request(t2, lockA, p2in); err == nil {
		t.Fatal("expected second deadlock error")
	}
	st := h.c.Stats()
	if st.DeadlocksDetected != 1 || st.DuplicateDeadlocks != 1 {
		t.Errorf("detected=%d duplicates=%d, want 1/1", st.DeadlocksDetected, st.DuplicateDeadlocks)
	}
	if store.Len() != 1 {
		t.Errorf("store has %d sigs, want 1 (no duplicate persistence)", store.Len())
	}
	if h.c.History()[0].Hits != 1 {
		t.Errorf("signature hits = %d, want 1", h.c.History()[0].Hits)
	}
}

func TestDetectThreeThreadCycle(t *testing.T) {
	h := newHarness(t, WithAvoidance(false))
	t1, t2, t3 := h.thread("t1"), h.thread("t2"), h.thread("t3")
	lA, lB, lC := h.lock("A"), h.lock("B"), h.lock("C")
	pA, pB, pC := h.pos("X", "a", 1), h.pos("X", "b", 2), h.pos("X", "c", 3)
	pw := h.pos("X", "w", 9)

	h.acquire(t1, lA, pA)
	h.acquire(t2, lB, pB)
	h.acquire(t3, lC, pC)
	if err := h.c.Request(t1, lB, pw); err != nil {
		t.Fatal(err)
	}
	if err := h.c.Request(t2, lC, pw); err != nil {
		t.Fatal(err)
	}
	// t3 → A closes a 3-cycle.
	if err := h.c.Request(t3, lA, pw); err != nil {
		t.Fatal(err)
	}
	if h.c.HistorySize() != 1 {
		t.Fatalf("history size = %d, want 1", h.c.HistorySize())
	}
	info := h.c.History()[0]
	if len(info.Pairs) != 3 {
		t.Errorf("3-cycle signature has %d pairs, want 3", len(info.Pairs))
	}
}

func TestNoFalseCycleOnChain(t *testing.T) {
	// t1 holds A; t2 requests A; t3 requests A. Pure contention, no cycle.
	h := newHarness(t)
	t1, t2, t3 := h.thread("t1"), h.thread("t2"), h.thread("t3")
	lA := h.lock("A")
	p := h.pos("X", "a", 1)
	pw := h.pos("X", "w", 2)

	h.acquire(t1, lA, p)
	if err := h.c.Request(t2, lA, pw); err != nil {
		t.Fatal(err)
	}
	if err := h.c.Request(t3, lA, pw); err != nil {
		t.Fatal(err)
	}
	if st := h.c.Stats(); st.DeadlocksDetected != 0 {
		t.Errorf("DeadlocksDetected = %d, want 0", st.DeadlocksDetected)
	}
}

func TestRequestBehindExistingDeadlockIsNotANewDeadlock(t *testing.T) {
	// A deadlock between t1 and t2 already manifested (freeze policy).
	// A third thread requesting one of the dead locks must not loop
	// forever in the cycle walk nor record a new signature.
	h := newHarness(t, WithAvoidance(false))
	t2, lockA, p2in := buildABBA(h)
	if err := h.c.Request(t2, lockA, p2in); err != nil {
		t.Fatal(err)
	}
	if h.c.HistorySize() != 1 {
		t.Fatal("setup: expected one detected deadlock")
	}

	t3 := h.thread("t3")
	pw := h.pos("Bystander", "call", 5)
	if err := h.c.Request(t3, lockA, pw); err != nil {
		t.Fatalf("bystander request: %v", err)
	}
	st := h.c.Stats()
	if st.DeadlocksDetected != 1 || st.DuplicateDeadlocks != 0 {
		t.Errorf("bystander must not re-detect: detected=%d dup=%d", st.DeadlocksDetected, st.DuplicateDeadlocks)
	}
}

func TestDetectionDisabled(t *testing.T) {
	h := newHarness(t, WithDetection(false), WithAvoidance(false))
	t2, lockA, p2in := buildABBA(h)
	if err := h.c.Request(t2, lockA, p2in); err != nil {
		t.Fatal(err)
	}
	if st := h.c.Stats(); st.DeadlocksDetected != 0 || st.CycleWalks != 0 {
		t.Errorf("detection disabled: detected=%d walks=%d, want 0/0", st.DeadlocksDetected, st.CycleWalks)
	}
}

func TestSignatureInnerStacksRecorded(t *testing.T) {
	h := newHarness(t, WithAvoidance(false))
	t2, lockA, p2in := buildABBA(h)
	if err := h.c.Request(t2, lockA, p2in); err != nil {
		t.Fatal(err)
	}
	info := h.c.History()[0]
	for i, p := range info.Pairs {
		if len(p.Inner) == 0 {
			t.Errorf("pair %d: empty inner stack", i)
		}
	}
}
