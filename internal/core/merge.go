package core

import "fmt"

// History merging. The paper positions Dimmunix antibodies as something
// "customers [use] to defend against deadlocks while waiting for a vendor
// patch, and software vendors as a safety net" — which implies histories
// move between machines: a vendor ships the signatures its test fleet
// collected, a user merges them into the device's history, and every app
// is immune to bugs it has never locally encountered. MergeHistories
// implements that: a deduplicating union of signature sets.

// MergeHistories returns the union of the given signature lists,
// deduplicated by signature key (kind + outer-position multiset), in
// first-seen order. Inputs are not modified; the result contains deep
// copies.
func MergeHistories(lists ...[]*Signature) ([]*Signature, error) {
	seen := make(map[string]bool)
	var out []*Signature
	for li, list := range lists {
		for si, sig := range list {
			if sig == nil {
				return nil, fmt.Errorf("merge: list %d entry %d is nil", li, si)
			}
			if err := sig.Validate(); err != nil {
				return nil, fmt.Errorf("merge: list %d entry %d: %w", li, si, err)
			}
			key := sig.Key()
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, &Signature{Kind: sig.Kind, Pairs: clonePairs(sig.Pairs)})
		}
	}
	return out, nil
}

// MergeStores loads every source store and appends the signatures missing
// from dst, returning how many were added. Duplicates already in dst (or
// across sources) are skipped.
func MergeStores(dst HistoryStore, sources ...HistoryStore) (added int, err error) {
	existing, err := dst.Load()
	if err != nil {
		return 0, fmt.Errorf("merge: load destination: %w", err)
	}
	seen := make(map[string]bool, len(existing))
	for _, sig := range existing {
		seen[sig.Key()] = true
	}
	for i, src := range sources {
		sigs, err := src.Load()
		if err != nil {
			return added, fmt.Errorf("merge: load source %d: %w", i, err)
		}
		for _, sig := range sigs {
			key := sig.Key()
			if seen[key] {
				continue
			}
			if err := dst.Append(sig); err != nil {
				return added, fmt.Errorf("merge: append: %w", err)
			}
			seen[key] = true
			added++
		}
	}
	return added, nil
}
