package core

import "fmt"

// History merging. The paper positions Dimmunix antibodies as something
// "customers [use] to defend against deadlocks while waiting for a vendor
// patch, and software vendors as a safety net" — which implies histories
// move between machines: a vendor ships the signatures its test fleet
// collected, a user merges them into the device's history, and every app
// is immune to bugs it has never locally encountered. MergeHistories
// implements that: a deduplicating union of signature sets.

// MergeHistories returns the union of the given signature lists,
// deduplicated by signature key (kind + outer-position multiset), in
// first-seen order. Inputs are not modified; the result contains deep
// copies.
func MergeHistories(lists ...[]*Signature) ([]*Signature, error) {
	seen := make(map[string]bool)
	var out []*Signature
	for li, list := range lists {
		for si, sig := range list {
			if sig == nil {
				return nil, fmt.Errorf("merge: list %d entry %d is nil", li, si)
			}
			if err := sig.Validate(); err != nil {
				return nil, fmt.Errorf("merge: list %d entry %d: %w", li, si, err)
			}
			key := sig.Key()
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, &Signature{Kind: sig.Kind, Pairs: clonePairs(sig.Pairs)})
		}
	}
	return out, nil
}

// MergeStores loads every source store and appends the signatures missing
// from dst, returning how many were added. Duplicates already in dst (or
// across sources) are skipped.
func MergeStores(dst HistoryStore, sources ...HistoryStore) (added int, err error) {
	detail, err := MergeStoresDetailed(dst, sources...)
	return detail.Added, err
}

// MergeSourceStat is one source's contribution to a merge.
type MergeSourceStat struct {
	// Loaded is how many signatures the source held.
	Loaded int
	// Added is how many of them were new to the destination (and to every
	// earlier source).
	Added int
	// Duplicates is how many were already present.
	Duplicates int
}

// MergeDetail reports a merge with per-source provenance, the shape a
// fleet operator needs: which device or vendor history actually
// contributed each antibody.
type MergeDetail struct {
	// Added is the total number of signatures appended to the destination.
	Added int
	// PerSource holds one entry per source, in argument order.
	PerSource []MergeSourceStat
	// Origin maps each added signature's key to the index of the source
	// that first contributed it.
	Origin map[string]int
	// AddedKeys lists the added signatures' keys in append order.
	AddedKeys []string
}

// MergeStoresDetailed is MergeStores with per-source added/duplicate
// counts and first-contributor provenance.
func MergeStoresDetailed(dst HistoryStore, sources ...HistoryStore) (MergeDetail, error) {
	detail := MergeDetail{
		PerSource: make([]MergeSourceStat, len(sources)),
		Origin:    make(map[string]int),
	}
	existing, err := dst.Load()
	if err != nil {
		return detail, fmt.Errorf("merge: load destination: %w", err)
	}
	seen := make(map[string]bool, len(existing))
	for _, sig := range existing {
		seen[sig.Key()] = true
	}
	for i, src := range sources {
		sigs, err := src.Load()
		if err != nil {
			return detail, fmt.Errorf("merge: load source %d: %w", i, err)
		}
		detail.PerSource[i].Loaded = len(sigs)
		for _, sig := range sigs {
			key := sig.Key()
			if seen[key] {
				detail.PerSource[i].Duplicates++
				continue
			}
			if err := dst.Append(sig); err != nil {
				return detail, fmt.Errorf("merge: append: %w", err)
			}
			seen[key] = true
			detail.PerSource[i].Added++
			detail.Added++
			detail.Origin[key] = i
			detail.AddedKeys = append(detail.AddedKeys, key)
		}
	}
	return detail, nil
}
