package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// SigKind distinguishes signatures of real deadlocks from signatures of
// avoidance-induced deadlocks (starvation).
type SigKind int

// Signature kinds.
const (
	// DeadlockSig marks the signature of an observed mutex deadlock.
	DeadlockSig SigKind = iota + 1
	// StarvationSig marks the signature of an avoidance-induced deadlock:
	// a yield pattern that blocked progress. Dimmunix "will subsequently
	// avoid entering the same starvation condition again, just like it
	// does for a normal deadlock" (§2.2).
	StarvationSig
)

// String returns the canonical kind name used in history files.
func (k SigKind) String() string {
	switch k {
	case DeadlockSig:
		return "deadlock"
	case StarvationSig:
		return "starvation"
	default:
		return fmt.Sprintf("SigKind(%d)", int(k))
	}
}

// parseSigKind is the inverse of SigKind.String.
func parseSigKind(s string) (SigKind, error) {
	switch s {
	case "deadlock":
		return DeadlockSig, nil
	case "starvation":
		return StarvationSig, nil
	default:
		return 0, fmt.Errorf("unknown signature kind %q", s)
	}
}

// SigPair is one deadlocked thread's contribution to a signature: the call
// stack it had when it acquired the lock involved in the deadlock (outer),
// and its call stack at the moment of the deadlock (inner). "Only the
// outer call stacks are relevant for the avoidance; the inner call stacks
// are kept just to offer more information about the deadlock" (§2.2).
type SigPair struct {
	Outer CallStack
	Inner CallStack
}

// Validate checks both stacks.
func (p SigPair) Validate() error {
	if err := p.Outer.Validate(); err != nil {
		return fmt.Errorf("outer: %w", err)
	}
	if err := p.Inner.Validate(); err != nil {
		return fmt.Errorf("inner: %w", err)
	}
	return nil
}

// Signature is a deadlock antibody: an approximation of the execution flow
// that led to a deadlock, consisting of one (outer, inner) call-stack pair
// per involved thread (§2.1). A deadlock bug is uniquely delimited by the
// outer and inner positions of its signature.
//
// The exported fields are the persistent part; the unexported fields are
// per-process runtime state (resolved positions and the condition variable
// avoidance yields on) populated when the signature is installed into a
// Core.
type Signature struct {
	Kind  SigKind
	Pairs []SigPair

	// id is the index of the signature in its Core's history.
	id int
	// slots holds the interned Position of each pair's outer stack, in
	// pair order. Two pairs with identical outer stacks share a *Position.
	slots []*Position
	// cond is the condition variable threads yield on while this signature
	// is instantiable; its Locker is the Core's engine lock, write side
	// (the paper's per-signature wait/notifyAll).
	cond *sync.Cond
	// stats, incremented under the exclusive engine lock but read by
	// History() snapshots without it, hence atomic.
	matches uint64 // instantiations found (yields caused)
	hits    uint64 // times detection re-encountered this signature

	// key interns the canonical identity after the first Key() call.
	// Kind and Pairs are fixed once a signature is built, but Key is
	// asked for on every hop of the distribution tier — dedup maps,
	// wire encoding, provenance records — so it is derived once, not
	// once per message. Atomic: first callers may race on different
	// goroutines (both compute the same string; one wins, harmlessly).
	key atomic.Pointer[string]
}

// Validate checks the signature's shape: a known kind and at least two
// pairs for deadlocks (a mutex deadlock involves at least two threads) or
// at least one for starvation signatures.
func (s *Signature) Validate() error {
	switch s.Kind {
	case DeadlockSig:
		if len(s.Pairs) < 2 {
			return fmt.Errorf("deadlock signature needs >=2 pairs, got %d", len(s.Pairs))
		}
	case StarvationSig:
		if len(s.Pairs) < 1 {
			return fmt.Errorf("starvation signature needs >=1 pair, got %d", len(s.Pairs))
		}
	default:
		return fmt.Errorf("invalid signature kind %d", int(s.Kind))
	}
	for i, p := range s.Pairs {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("pair %d: %w", i, err)
		}
	}
	return nil
}

// Key returns a canonical identity for the signature: its kind plus the
// sorted multiset of outer stack keys. Signatures matching the same
// deadlock bug (same outer positions) map to the same key regardless of
// thread enumeration order, which is how the history deduplicates repeat
// detections of one bug.
func (s *Signature) Key() string {
	if k := s.key.Load(); k != nil {
		return *k
	}
	keys := make([]string, 0, len(s.Pairs)+1)
	for _, p := range s.Pairs {
		keys = append(keys, p.Outer.Key())
	}
	sort.Strings(keys)
	k := s.Kind.String() + "{" + strings.Join(keys, "|") + "}"
	s.key.Store(&k)
	return k
}

// ID returns the signature's index in its Core's history, or -1 if the
// signature has not been installed.
func (s *Signature) ID() int {
	if s.cond == nil {
		return -1
	}
	return s.id
}

// ClonePairs deep-copies signature pairs, so a copied signature never
// aliases the original's stacks. The immunity distribution tier clones
// every signature it accepts or pushes with this.
func ClonePairs(pairs []SigPair) []SigPair {
	return clonePairs(pairs)
}

// clonePairs deep-copies the pairs so an installed signature never aliases
// caller-owned stacks.
func clonePairs(pairs []SigPair) []SigPair {
	out := make([]SigPair, len(pairs))
	for i, p := range pairs {
		out[i] = SigPair{Outer: p.Outer.Clone(), Inner: p.Inner.Clone()}
	}
	return out
}

// SignatureInfo is an immutable snapshot of an installed signature,
// returned by Core.History and carried on events. It never aliases live
// core state.
type SignatureInfo struct {
	// ID is the signature's index in the history.
	ID int
	// Kind is the signature kind.
	Kind SigKind
	// Pairs are deep copies of the signature's pairs.
	Pairs []SigPair
	// Matches counts instantiations found (avoidance yields caused).
	Matches uint64
	// Hits counts repeat detections of this same bug.
	Hits uint64
}

// snapshot builds a SignatureInfo from an installed signature.
func (s *Signature) snapshot() SignatureInfo {
	return SignatureInfo{
		ID:      s.id,
		Kind:    s.Kind,
		Pairs:   clonePairs(s.Pairs),
		Matches: atomic.LoadUint64(&s.matches),
		Hits:    atomic.LoadUint64(&s.hits),
	}
}

// String renders a compact description, e.g.
// "deadlock#3[A.b:1 | C.d:2]".
func (info SignatureInfo) String() string {
	outs := make([]string, len(info.Pairs))
	for i, p := range info.Pairs {
		outs[i] = p.Outer.Key()
	}
	return fmt.Sprintf("%s#%d[%s]", info.Kind, info.ID, strings.Join(outs, " | "))
}
