package core

import (
	"fmt"
	"sync/atomic"
)

// EventKind identifies the type of a core event.
type EventKind int

// Event kinds emitted by a Core.
const (
	// EventDeadlockDetected fires when Request finds a cycle in the RAG.
	// The signature has already been added to the history (and persisted,
	// if a store is configured) by the time the event is visible.
	EventDeadlockDetected EventKind = iota + 1
	// EventSignatureLoaded fires once per signature installed from the
	// persistent store at Core construction.
	EventSignatureLoaded
	// EventYield fires when avoidance suspends a thread because a
	// signature instantiation became possible.
	EventYield
	// EventResume fires when a suspended thread passes the avoidance check
	// and proceeds.
	EventResume
	// EventStarvation fires when an avoidance-induced deadlock is
	// detected; its signature has been saved and the yielding thread
	// force-resumed.
	EventStarvation
	// EventDuplicateDeadlock fires when detection encounters a deadlock
	// whose signature is already in the history (same bug, reoccurring).
	EventDuplicateDeadlock
	// EventSignatureInstalled fires when a signature detected outside this
	// process is hot-installed by the platform immunity service
	// (Core.InstallSignature), arming avoidance without a restart.
	EventSignatureInstalled
)

// String returns a readable event-kind name.
func (k EventKind) String() string {
	switch k {
	case EventDeadlockDetected:
		return "deadlock-detected"
	case EventSignatureLoaded:
		return "signature-loaded"
	case EventYield:
		return "yield"
	case EventResume:
		return "resume"
	case EventStarvation:
		return "starvation"
	case EventDuplicateDeadlock:
		return "duplicate-deadlock"
	case EventSignatureInstalled:
		return "signature-installed"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one observable core occurrence, delivered on Core.Events.
// Events carry value snapshots only; consuming them never touches live
// core state.
type Event struct {
	Kind EventKind
	// Sig describes the signature involved (all kinds).
	Sig SignatureInfo
	// ThreadID and ThreadName identify the thread involved (yield, resume,
	// starvation, detection requester).
	ThreadID   uint64
	ThreadName string
	// Pos is the requesting position's key, when applicable.
	Pos string
}

// String renders the event for logs.
func (e Event) String() string {
	return fmt.Sprintf("%s thread=%s(%d) pos=%s sig=%s",
		e.Kind, e.ThreadName, e.ThreadID, e.Pos, e.Sig)
}

// emit queues an event for delivery, serialized by the event lock (evMu,
// a leaf in the lock order — emit may be called with or without the
// engine lock). Delivery is non-blocking: if the buffer is full the event
// is dropped and counted, so a slow or absent consumer can never stall
// the synchronization path.
func (c *Core) emit(ev Event) {
	c.evMu.Lock()
	defer c.evMu.Unlock()
	if c.eventsClosed {
		return
	}
	select {
	case c.events <- ev:
	default:
		atomic.AddUint64(&c.stats.EventsDropped, 1)
	}
}
