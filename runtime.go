package dimmunix

import (
	"github.com/dimmunix/dimmunix/internal/core"
	"github.com/dimmunix/dimmunix/internal/immunity"
	"github.com/dimmunix/dimmunix/internal/vm"
)

// Runtime is the managed runtime a platform boots once: its Zygote forks
// application processes, each of which runs with its own user-space
// Dimmunix instance initialized from the shared persistent history —
// platform-wide deadlock immunity, exactly as the paper deploys Dimmunix
// inside Android's Dalvik VM.
type Runtime struct {
	zygote *vm.Zygote
	svc    *immunity.Service
}

// RuntimeOption configures a Runtime.
type RuntimeOption func(*runtimeConfig)

type runtimeConfig struct {
	immunity bool
	store    core.HistoryStore
	svc      *immunity.Service
	coreOpts []core.Option
}

// WithImmunity toggles platform-wide deadlock immunity (default on;
// disabling yields the vanilla baseline runtime).
func WithImmunity(on bool) RuntimeOption {
	return func(c *runtimeConfig) { c.immunity = on }
}

// WithHistory attaches a persistent history store shared by every forked
// process.
func WithHistory(store HistoryStore) RuntimeOption {
	return func(c *runtimeConfig) { c.store = store }
}

// WithHistoryFile attaches a file-backed history at the given path.
func WithHistoryFile(path string) RuntimeOption {
	return func(c *runtimeConfig) { c.store = core.NewFileHistory(path) }
}

// WithCoreOptions forwards options to every forked process's core.
func WithCoreOptions(opts ...CoreOption) RuntimeOption {
	return func(c *runtimeConfig) { c.coreOpts = append(c.coreOpts, opts...) }
}

// WithImmunityService attaches the device's live-propagation hub: the
// service becomes every forked process's history store, and each process
// subscribes so signatures detected anywhere on the platform hot-install
// into its running core — no restart needed. Supersedes
// WithHistory/WithHistoryFile (give the hub the backing store instead,
// via NewImmunityService).
func WithImmunityService(svc *ImmunityService) RuntimeOption {
	return func(c *runtimeConfig) { c.svc = svc }
}

// New creates a Runtime. By default immunity is enabled with an in-memory
// history; attach WithHistoryFile for persistence across restarts.
func New(opts ...RuntimeOption) *Runtime {
	cfg := runtimeConfig{immunity: true}
	for _, opt := range opts {
		opt(&cfg)
	}
	zopts := []vm.ZygoteOption{vm.WithDimmunix(cfg.immunity)}
	if cfg.svc != nil {
		zopts = append(zopts, vm.WithSignatureBus(cfg.svc))
	} else if cfg.store != nil {
		zopts = append(zopts, vm.WithHistory(cfg.store))
	}
	if len(cfg.coreOpts) > 0 {
		zopts = append(zopts, vm.WithCoreOptions(cfg.coreOpts...))
	}
	return &Runtime{zygote: vm.NewZygote(zopts...), svc: cfg.svc}
}

// Fork creates a new application process whose Dimmunix instance is
// initialized (history loaded, avoidance armed) before any of its code
// runs.
func (r *Runtime) Fork(name string) (*Process, error) {
	return r.zygote.Fork(name)
}

// Processes returns all processes forked so far.
func (r *Runtime) Processes() []*Process {
	return r.zygote.Processes()
}

// Immunity returns the attached live-propagation hub, or nil.
func (r *Runtime) Immunity() *ImmunityService { return r.svc }

// Shutdown kills every forked process, reaping all threads — including
// threads frozen in a deadlock. An attached immunity service is left
// running (it outlives reboots); close it separately when the device is
// retired.
func (r *Runtime) Shutdown() {
	r.zygote.KillAll()
}
