package dimmunix

import (
	"github.com/dimmunix/dimmunix/internal/android"
)

// Phone-simulation facade: the full platform of the paper's evaluation —
// system server, Looper/Handler services, watchdog, and the
// boot/freeze/reboot lifecycle around Android issue 7986.
type (
	// Phone is the simulated device.
	Phone = android.Phone
	// PhoneConfig configures a Phone.
	PhoneConfig = android.PhoneConfig
	// SystemServer is the platform's service host process.
	SystemServer = android.SystemServer
	// ScenarioOutcome reports how a driven scenario ended.
	ScenarioOutcome = android.ScenarioOutcome
)

// Scenario outcomes.
const (
	// OutcomeCompleted: the scenario's operations all finished.
	OutcomeCompleted = android.OutcomeCompleted
	// OutcomeFroze: the watchdog reported a frozen platform handler.
	OutcomeFroze = android.OutcomeFroze
)

// NewPhone creates a simulated phone; call Boot to start it.
func NewPhone(cfg PhoneConfig) *Phone { return android.NewPhone(cfg) }

// DefaultPhoneConfig returns a Dimmunix-enabled phone configuration with
// an in-memory history.
func DefaultPhoneConfig() PhoneConfig { return android.DefaultPhoneConfig() }

// FrameworkCensus builds the simulated platform's static
// synchronization-site census (the §3.2 measurement: 1,050 synchronized
// blocks/methods vs 15 explicit lock/unlock sites).
func FrameworkCensus(serviceSites ...[]*Site) (*Census, error) {
	return android.FrameworkCensus(serviceSites...)
}

// Census targets from the paper (§3.2).
const (
	// TargetSyncSites is the synchronized blocks/methods count.
	TargetSyncSites = android.TargetSyncSites
	// TargetExplicitSites is the explicit lock/unlock count.
	TargetExplicitSites = android.TargetExplicitSites
)
