package main

import (
	"crypto/tls"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/dimmunix/dimmunix/internal/immunity"
	"github.com/dimmunix/dimmunix/internal/immunity/auth"
	"github.com/dimmunix/dimmunix/internal/immunity/wire"
	"github.com/dimmunix/dimmunix/internal/workload"
)

func TestImmunitydFleetRun(t *testing.T) {
	if err := run([]string{"-phones", "2", "-procs", "1", "-threshold", "2"}); err != nil {
		t.Fatalf("fleet run: %v", err)
	}
}

func TestImmunitydFleetRunTCP(t *testing.T) {
	if err := run([]string{"-phones", "2", "-procs", "1", "-threshold", "2", "-transport", "tcp"}); err != nil {
		t.Fatalf("fleet run over tcp: %v", err)
	}
}

func TestImmunitydPropagationRun(t *testing.T) {
	if err := run([]string{"-propagation", "-procs", "2", "-sigs", "4"}); err != nil {
		t.Fatalf("propagation run: %v", err)
	}
}

func TestImmunitydPropagationRunTCP(t *testing.T) {
	if err := run([]string{"-propagation", "-procs", "2", "-sigs", "4", "-tcp"}); err != nil {
		t.Fatalf("tcp propagation run: %v", err)
	}
}

func TestImmunitydBadFlags(t *testing.T) {
	if err := run([]string{"-phones", "1"}); err == nil {
		t.Error("one phone must fail validation")
	}
	if err := run([]string{"-threshold", "9", "-phones", "2"}); err == nil {
		t.Error("threshold above phone count must fail")
	}
	if err := run([]string{"-transport", "smoke-signals"}); err == nil {
		t.Error("unknown transport must fail validation")
	}
}

// TestImmunitydServeAndClientMode is the daemon loop the CI step runs:
// boot the daemon (TCP exchange + durable provenance + HTTP /status),
// run the fleet workload in client mode against it over real sockets,
// and assert through /status that confirm-before-arm gating held.
func TestImmunitydServeAndClientMode(t *testing.T) {
	const threshold = 2
	prov := filepath.Join(t.TempDir(), "fleet.prov")
	d, err := startDaemon(serveConfig{listen: "127.0.0.1:0", httpAddr: "127.0.0.1:0", threshold: threshold, provenance: prov})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	cfg := workload.FleetImmunityConfig{
		Phones:           3,
		ProcsPerPhone:    2,
		ConfirmThreshold: threshold,
		Timeout:          30 * time.Second,
		Dial:             d.Addr(),
	}
	res, err := workload.RunFleetImmunity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RemoteArmedBeforeThreshold != 0 {
		t.Errorf("%d remote procs armed below threshold", res.RemoteArmedBeforeThreshold)
	}
	if len(res.Provenance) != 1 || !res.Provenance[0].Armed {
		t.Fatalf("client-mode provenance: %+v", res.Provenance)
	}

	// The HTTP endpoint tells the same story: exactly one armed
	// signature, with exactly threshold confirmations (the threshold
	// math CI asserts).
	resp, err := http.Get("http://" + d.HTTPAddr() + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st wire.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 1 || st.Threshold != threshold {
		t.Fatalf("/status = %+v, want epoch 1 at threshold %d", st, threshold)
	}
	armed := 0
	for _, p := range st.Provenance {
		if p.Armed {
			armed++
			if p.Confirmations != threshold {
				t.Errorf("armed with %d confirmations, want exactly %d: %+v", p.Confirmations, threshold, p)
			}
		}
	}
	if armed != 1 {
		t.Fatalf("/status reports %d armed signatures, want 1", armed)
	}

	// Daemon restart over the same provenance file resumes armed state.
	d.Close()
	d2, err := startDaemon(serveConfig{listen: "127.0.0.1:0", threshold: threshold, provenance: prov})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if st := d2.hub.Status(); st.Epoch != 1 || len(st.Provenance) != 1 || !st.Provenance[0].Armed {
		t.Fatalf("restarted daemon status = %+v, want the armed signature back", st)
	}
}

// TestImmunitydTLSAuthServe: the authenticated daemon end to end using
// the CLI's own material — a -gen-ca/-gen-cert dev CA on disk, the hub
// serving TLS with token auth and a per-tenant threshold, the fleet
// workload connecting over TLS with a minted token, a token-less client
// refused, and the tenant view visible in a TLS status probe.
func TestImmunitydTLSAuthServe(t *testing.T) {
	dir := t.TempDir()
	if err := runGenTLS(dir, "hub0", "", ""); err != nil {
		t.Fatal(err)
	}
	cert, err := tls.LoadX509KeyPair(filepath.Join(dir, "hub0.pem"), filepath.Join(dir, "hub0-key.pem"))
	if err != nil {
		t.Fatalf("generated keypair unusable: %v", err)
	}
	pool, err := loadCertPool(filepath.Join(dir, "ca.pem"))
	if err != nil {
		t.Fatal(err)
	}
	key := []byte("daemon-test-key")
	d, err := startDaemon(serveConfig{
		listen: "127.0.0.1:0", httpAddr: "127.0.0.1:0", threshold: 2,
		verifier: auth.NewStatic(key), serveTLS: auth.ServerConfig(cert, pool),
		tenantThresholds: map[string]int{"beta": 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	clientTLS := auth.ClientConfig(pool, "")
	token, err := auth.Mint(key, auth.Claims{Tenant: "alpha", Device: auth.WildcardDevice})
	if err != nil {
		t.Fatal(err)
	}
	cfg := workload.FleetImmunityConfig{
		Phones: 3, ProcsPerPhone: 2, ConfirmThreshold: 2,
		Timeout: 30 * time.Second, Dial: d.Addr(),
		Token: token, TLS: clientTLS,
	}
	res, err := workload.RunFleetImmunity(cfg)
	if err != nil {
		t.Fatalf("authenticated client workload: %v", err)
	}
	if res.RemoteArmedBeforeThreshold != 0 {
		t.Errorf("%d remote procs armed below threshold", res.RemoteArmedBeforeThreshold)
	}
	if len(res.Provenance) != 1 || !res.Provenance[0].Armed {
		t.Fatalf("authenticated provenance: %+v", res.Provenance)
	}

	// A token-less client is refused before it can report anything.
	noToken := cfg
	noToken.Token = ""
	noToken.Timeout = 10 * time.Second
	if _, err := workload.RunFleetImmunity(noToken); err == nil {
		t.Fatal("token-less client completed against an auth-required daemon")
	}

	// The status probe over TLS shows the tenant view: alpha's armed
	// signature under the default threshold, nothing leaked elsewhere.
	st, err := immunity.FetchStatus(d.Addr(), 5*time.Second, immunity.WithDialTLS(clientTLS))
	if err != nil {
		t.Fatal(err)
	}
	var alphaSeen bool
	for _, ts := range st.Tenants {
		if ts.Tenant != "alpha" {
			continue
		}
		alphaSeen = true
		if ts.Armed != 1 || ts.Threshold != 2 {
			t.Fatalf("alpha tenant status = %+v, want 1 armed at threshold 2", ts)
		}
	}
	if !alphaSeen {
		t.Fatalf("tenant view missing alpha: %+v", st.Tenants)
	}
}

// TestImmunitydAuthFlagValidation: the auth flag surface fails closed.
func TestImmunitydAuthFlagValidation(t *testing.T) {
	if err := run([]string{"-mint-token"}); err == nil {
		t.Error("-mint-token without -auth-key must fail")
	}
	if err := run([]string{"-token", "x", "-phones", "2"}); err == nil {
		t.Error("-token without -connect must fail")
	}
	if err := run([]string{"-tls-ca", "nope.pem", "-phones", "2"}); err == nil {
		t.Error("-tls-ca without -connect or -serve must fail")
	}
	if err := run([]string{"-serve", "-tls-cert", "c.pem"}); err == nil {
		t.Error("-tls-cert without -tls-key must fail")
	}
	if err := run([]string{"-serve", "-auth-key", "k", "-auth-keyring", "f"}); err == nil {
		t.Error("-auth-key with -auth-keyring must fail")
	}
	if err := run([]string{"-auth-key", "k", "-phones", "2"}); err == nil {
		t.Error("-auth-key outside -serve must fail")
	}
	if _, err := parseTenantThresholds("beta=0"); err == nil {
		t.Error("zero tenant threshold must fail")
	}
	if _, err := parseTenantThresholds("=2"); err == nil {
		t.Error("empty tenant name must fail")
	}
	m, err := parseTenantThresholds("alpha=2, beta=3")
	if err != nil || m["alpha"] != 2 || m["beta"] != 3 {
		t.Errorf("parseTenantThresholds = %v, %v", m, err)
	}
}

// freePorts reserves n distinct loopback ports by listening and
// immediately closing; the tiny reuse race is acceptable in tests.
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// TestImmunitydFederatedCluster boots the 3-daemon topology the CI
// workflow uses — three serve-mode hubs federated via -peers — runs the
// client-mode fleet workload against two different hubs, and asserts
// through each hub's status that arming was gated at the owner and
// propagated cluster-wide.
func TestImmunitydFederatedCluster(t *testing.T) {
	const threshold = 2
	ids := []string{"hub0", "hub1", "hub2"}
	addrs := freePorts(t, 3)
	daemons := make([]*daemon, 3)
	for i := range daemons {
		var peerSpec string
		for j := range addrs {
			if j != i {
				if peerSpec != "" {
					peerSpec += ","
				}
				peerSpec += ids[j] + "=" + addrs[j]
			}
		}
		members, err := parsePeers(peerSpec)
		if err != nil {
			t.Fatal(err)
		}
		d, err := startDaemon(serveConfig{listen: addrs[i], threshold: threshold, hubID: ids[i], peers: members})
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		daemons[i] = d
	}

	cfg := workload.FleetImmunityConfig{
		Phones:           4,
		ProcsPerPhone:    2,
		ConfirmThreshold: threshold,
		Timeout:          30 * time.Second,
		Dial:             addrs[0] + "," + addrs[1], // phones split across two hubs
	}
	res, err := workload.RunFleetImmunity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RemoteArmedBeforeThreshold != 0 {
		t.Errorf("%d remote procs armed below threshold", res.RemoteArmedBeforeThreshold)
	}
	if len(res.Provenance) != 1 || !res.Provenance[0].Armed || res.Provenance[0].Confirmations != threshold {
		t.Fatalf("client-mode cluster provenance: %+v", res.Provenance)
	}

	// The workload only observes the two dialed hubs; the third hears
	// about the arming asynchronously over the peer protocol — give the
	// broadcast a bounded moment to land before asserting.
	deadline := time.Now().Add(10 * time.Second)
	for {
		all := true
		for _, d := range daemons {
			if d.hub.Status().Epoch != 1 {
				all = false
			}
		}
		if all {
			break
		}
		if time.Now().After(deadline) {
			break // fall through to the precise per-hub failure below
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Every hub installed the arming; exactly one hub — the owner —
	// holds the confirmation set, everyone else a replicated record.
	ownersWithConfirms := 0
	for i, d := range daemons {
		st := d.hub.Status()
		if st.Epoch != 1 {
			t.Fatalf("%s epoch = %d, want 1 (arming not propagated cluster-wide)", ids[i], st.Epoch)
		}
		if st.Hub != ids[i] || st.Cluster == nil || len(st.Cluster.Members) != 3 {
			t.Fatalf("%s status missing cluster fields: %+v", ids[i], st)
		}
		if len(st.Provenance) != 1 || !st.Provenance[0].Armed {
			t.Fatalf("%s provenance = %+v, want the armed signature", ids[i], st.Provenance)
		}
		p := st.Provenance[0]
		if p.Owner == ids[i] {
			if len(p.ConfirmedBy) != threshold {
				t.Fatalf("owner %s confirmation set = %v, want %d devices", ids[i], p.ConfirmedBy, threshold)
			}
			ownersWithConfirms++
		} else if len(p.ConfirmedBy) != 0 {
			t.Fatalf("non-owner %s replicated the confirmation set: %v", ids[i], p.ConfirmedBy)
		}
	}
	if ownersWithConfirms != 1 {
		t.Fatalf("%d hubs claim ownership, want exactly 1", ownersWithConfirms)
	}
}

func TestImmunitydParseAdmit(t *testing.T) {
	for _, tc := range []struct {
		in   string
		cap  int
		auto bool
		bad  bool
	}{
		{in: "", cap: 0},
		{in: "auto", auto: true},
		{in: "4", cap: 4},
		{in: "0", cap: 0},
		{in: "-1", bad: true},
		{in: "many", bad: true},
	} {
		capN, auto, err := parseAdmit(tc.in)
		if tc.bad {
			if err == nil {
				t.Errorf("parseAdmit(%q) accepted", tc.in)
			}
			continue
		}
		if err != nil || capN != tc.cap || auto != tc.auto {
			t.Errorf("parseAdmit(%q) = (%d, %v, %v), want (%d, %v)", tc.in, capN, auto, err, tc.cap, tc.auto)
		}
	}
	if err := run([]string{"-phones", "2", "-procs", "1", "-admit", "auto"}); err == nil {
		t.Error("-admit outside -serve/-storm must fail")
	}
	if err := run([]string{"-phones", "2", "-procs", "1", "-ramp-flood", "1s"}); err == nil {
		t.Error("-ramp-flood outside -storm must fail")
	}
}

// TestImmunitydAdaptiveAdmission boots a daemon with -admit auto
// semantics and drives the ramped storm against it over TCP: the AIMD
// controller must grow during the paced warmup, collapse capacity when
// the full-batch flood breaches the latency SLO, shed nothing, and the
// whole loop must be observable — AIMD trace counters and live capacity
// on /metrics, breach counts and state on /slo, per-second rate gauges
// on /status.
func TestImmunitydAdaptiveAdmission(t *testing.T) {
	d, err := startDaemon(serveConfig{
		listen: "127.0.0.1:0", httpAddr: "127.0.0.1:0",
		threshold: 2, admitAuto: true, admitWait: 10 * time.Second,
		sloTarget: 500 * time.Microsecond, sloInterval: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	res, err := workload.RunReportStorm(workload.StormConfig{
		Devices: 16,
		Sigs:    64,
		Timeout: 60 * time.Second,
		Dial:    d.Addr(),
		Ramp:    &workload.StormRamp{Warmup: 700 * time.Millisecond, Flood: 900 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Armed < 64 {
		t.Fatalf("armed %d/64 — the ramped storm lost signatures", res.Armed)
	}

	scrape := func(path string) string {
		resp, err := http.Get("http://" + d.HTTPAddr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	page := scrape("/metrics")
	sample := func(name string) float64 {
		re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` ([0-9.e+-]+)$`)
		m := re.FindStringSubmatch(page)
		if m == nil {
			t.Fatalf("/metrics missing sample %s:\n%s", name, page)
		}
		v, err := strconv.ParseFloat(m[1], 64)
		if err != nil {
			t.Fatalf("sample %s = %q: %v", name, m[1], err)
		}
		return v
	}
	if n := sample("immunity_hub_admission_aimd_increases_total"); n == 0 {
		t.Error("warmup produced no AIMD increase")
	}
	if n := sample("immunity_hub_admission_aimd_decreases_total"); n == 0 {
		t.Error("flood produced no AIMD decrease")
	}
	if n := sample("immunity_hub_admission_capacity"); n >= 8 {
		t.Errorf("capacity = %v after the flood, want converged below the initial 8", n)
	}
	if n := sample("immunity_hub_admission_shed_total"); n != 0 {
		t.Errorf("shed = %v under a generous wait", n)
	}
	if n := sample("immunity_hub_uptime_seconds"); n <= 0 {
		t.Errorf("uptime gauge = %v, want > 0", n)
	}
	if !strings.Contains(page, `immunity_build_info{version=`) {
		t.Error("/metrics missing immunity_build_info")
	}
	if !strings.Contains(page, `immunity_hub_reports_per_second{window="10s"}`) {
		t.Error("/metrics missing windowed rate gauges")
	}

	// /slo: the flood must have escalated the latency objective to
	// breach at least once; shed-zero must never have.
	var slos []struct {
		Name     string  `json:"name"`
		State    string  `json:"state"`
		Breaches uint64  `json:"breaches_total"`
		Target   float64 `json:"target"`
	}
	if err := json.Unmarshal([]byte(scrape("/slo")), &slos); err != nil {
		t.Fatalf("/slo decode: %v", err)
	}
	byName := map[string]int{}
	for i, s := range slos {
		byName[s.Name] = i
	}
	lat, ok := byName["report-latency"]
	if !ok {
		t.Fatalf("/slo missing report-latency: %+v", slos)
	}
	if slos[lat].Breaches == 0 {
		t.Errorf("report-latency breaches = 0, want >= 1 after the flood: %+v", slos[lat])
	}
	shed, ok := byName["shed-zero"]
	if !ok {
		t.Fatalf("/slo missing shed-zero: %+v", slos)
	}
	if slos[shed].Breaches != 0 {
		t.Errorf("shed-zero breached: %+v", slos[shed])
	}

	// /status: the storm is inside the 10s window, so the report rate
	// gauge must still be nonzero.
	var st struct {
		Rates map[string]map[string]float64 `json:"rates"`
	}
	if err := json.Unmarshal([]byte(scrape("/status")), &st); err != nil {
		t.Fatalf("/status decode: %v", err)
	}
	if st.Rates["immunity_hub_reports_per_second"]["10s"] <= 0 {
		t.Errorf("/status rates missing a live report rate: %+v", st.Rates)
	}
}

// TestImmunitydMetricsAndStorm is the admission acceptance drive the CI
// storm step mirrors: a daemon with a 1-permit admission pool absorbs a
// multi-device report storm — every signature still arms, and /metrics
// shows the burst was delayed (bounded degradation), not shed and not
// buffered without limit.
func TestImmunitydMetricsAndStorm(t *testing.T) {
	d, err := startDaemon(serveConfig{
		listen: "127.0.0.1:0", httpAddr: "127.0.0.1:0",
		threshold: 2, admit: 1, admitWait: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	res, err := workload.RunReportStorm(workload.StormConfig{
		Devices: 6,
		Sigs:    16,
		Timeout: 30 * time.Second,
		Dial:    d.Addr(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Armed < 16 {
		t.Fatalf("armed %d/16 — the storm lost signatures", res.Armed)
	}

	// The storm's sessions close before RunReportStorm returns, but the
	// hub notices a TCP hangup asynchronously — scrape until the session
	// gauge settles so the teardown accounting is asserted without racing
	// it.
	var page string
	scrape := func() string {
		resp, err := http.Get("http://" + d.HTTPAddr() + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
			t.Fatalf("/metrics content type %q", ct)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		page = scrape()
		if strings.Contains(page, "immunity_hub_device_sessions 0") || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	sample := func(name string) float64 {
		re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` ([0-9.e+-]+)$`)
		m := re.FindStringSubmatch(page)
		if m == nil {
			t.Fatalf("/metrics missing sample %s:\n%s", name, page)
		}
		v, err := strconv.ParseFloat(m[1], 64)
		if err != nil {
			t.Fatalf("sample %s = %q: %v", name, m[1], err)
		}
		return v
	}
	if n := sample("immunity_hub_armed_total"); n < 16 {
		t.Errorf("armed_total = %v, want >= 16", n)
	}
	if n := sample("immunity_hub_admission_delayed_total") + sample("immunity_hub_admission_shed_total"); n == 0 {
		t.Error("storm produced no delayed/shed verdicts — admission is not engaging")
	}
	if n := sample("immunity_hub_admission_shed_total"); n != 0 {
		t.Errorf("shed = %v under a generous wait — arming completeness was luck", n)
	}
	if n := sample("immunity_hub_device_sessions"); n != 0 {
		t.Errorf("device_sessions = %v after all storm sessions closed, want 0", n)
	}
	for _, series := range []string{
		"# TYPE immunity_hub_report_seconds histogram",
		"immunity_hub_reports_total",
		"immunity_hub_push_pending",
	} {
		if !strings.Contains(page, series) {
			t.Errorf("/metrics missing %q", series)
		}
	}
}
