package main

import "testing"

func TestImmunitydFleetRun(t *testing.T) {
	if err := run([]string{"-phones", "2", "-procs", "1", "-threshold", "2"}); err != nil {
		t.Fatalf("fleet run: %v", err)
	}
}

func TestImmunitydPropagationRun(t *testing.T) {
	if err := run([]string{"-propagation", "-procs", "2", "-sigs", "4"}); err != nil {
		t.Fatalf("propagation run: %v", err)
	}
}

func TestImmunitydBadFlags(t *testing.T) {
	if err := run([]string{"-phones", "1"}); err == nil {
		t.Error("one phone must fail validation")
	}
	if err := run([]string{"-threshold", "9", "-phones", "2"}); err == nil {
		t.Error("threshold above phone count must fail")
	}
}
