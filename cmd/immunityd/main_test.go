package main

import (
	"encoding/json"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"github.com/dimmunix/dimmunix/internal/immunity/wire"
	"github.com/dimmunix/dimmunix/internal/workload"
)

func TestImmunitydFleetRun(t *testing.T) {
	if err := run([]string{"-phones", "2", "-procs", "1", "-threshold", "2"}); err != nil {
		t.Fatalf("fleet run: %v", err)
	}
}

func TestImmunitydFleetRunTCP(t *testing.T) {
	if err := run([]string{"-phones", "2", "-procs", "1", "-threshold", "2", "-transport", "tcp"}); err != nil {
		t.Fatalf("fleet run over tcp: %v", err)
	}
}

func TestImmunitydPropagationRun(t *testing.T) {
	if err := run([]string{"-propagation", "-procs", "2", "-sigs", "4"}); err != nil {
		t.Fatalf("propagation run: %v", err)
	}
}

func TestImmunitydPropagationRunTCP(t *testing.T) {
	if err := run([]string{"-propagation", "-procs", "2", "-sigs", "4", "-tcp"}); err != nil {
		t.Fatalf("tcp propagation run: %v", err)
	}
}

func TestImmunitydBadFlags(t *testing.T) {
	if err := run([]string{"-phones", "1"}); err == nil {
		t.Error("one phone must fail validation")
	}
	if err := run([]string{"-threshold", "9", "-phones", "2"}); err == nil {
		t.Error("threshold above phone count must fail")
	}
	if err := run([]string{"-transport", "smoke-signals"}); err == nil {
		t.Error("unknown transport must fail validation")
	}
}

// TestImmunitydServeAndClientMode is the daemon loop the CI step runs:
// boot the daemon (TCP exchange + durable provenance + HTTP /status),
// run the fleet workload in client mode against it over real sockets,
// and assert through /status that confirm-before-arm gating held.
func TestImmunitydServeAndClientMode(t *testing.T) {
	const threshold = 2
	prov := filepath.Join(t.TempDir(), "fleet.prov")
	d, err := startDaemon("127.0.0.1:0", "127.0.0.1:0", threshold, prov)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	cfg := workload.FleetImmunityConfig{
		Phones:           3,
		ProcsPerPhone:    2,
		ConfirmThreshold: threshold,
		Timeout:          30 * time.Second,
		Dial:             d.Addr(),
	}
	res, err := workload.RunFleetImmunity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RemoteArmedBeforeThreshold != 0 {
		t.Errorf("%d remote procs armed below threshold", res.RemoteArmedBeforeThreshold)
	}
	if len(res.Provenance) != 1 || !res.Provenance[0].Armed {
		t.Fatalf("client-mode provenance: %+v", res.Provenance)
	}

	// The HTTP endpoint tells the same story: exactly one armed
	// signature, with exactly threshold confirmations (the threshold
	// math CI asserts).
	resp, err := http.Get("http://" + d.HTTPAddr() + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st wire.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 1 || st.Threshold != threshold {
		t.Fatalf("/status = %+v, want epoch 1 at threshold %d", st, threshold)
	}
	armed := 0
	for _, p := range st.Provenance {
		if p.Armed {
			armed++
			if p.Confirmations != threshold {
				t.Errorf("armed with %d confirmations, want exactly %d: %+v", p.Confirmations, threshold, p)
			}
		}
	}
	if armed != 1 {
		t.Fatalf("/status reports %d armed signatures, want 1", armed)
	}

	// Daemon restart over the same provenance file resumes armed state.
	d.Close()
	d2, err := startDaemon("127.0.0.1:0", "", threshold, prov)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if st := d2.hub.Status(); st.Epoch != 1 || len(st.Provenance) != 1 || !st.Provenance[0].Armed {
		t.Fatalf("restarted daemon status = %+v, want the armed signature back", st)
	}
}
