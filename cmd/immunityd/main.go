// Command immunityd is the fleet immunity daemon and its test harness.
//
// In serve mode it is a long-running hub: the signature exchange served
// over TCP (the versioned wire protocol of internal/immunity/wire),
// durable provenance in a file store so a daemon restart loses no
// confirmation and never re-arms below threshold, and an HTTP /status
// endpoint exposing the fleet epoch, per-signature provenance, connected
// devices, and delta-batching counters as JSON.
//
// In client mode it runs the fleet immunity workload against such a
// daemon across real sockets. Without either flag it runs the
// self-contained simulation (in-process hub, loopback or TCP transport).
//
// Usage:
//
//	immunityd -serve [-listen ADDR] [-http ADDR] [-threshold N] [-provenance FILE]
//	immunityd -connect ADDR [-phones N] [-procs N] [-threshold N] [-timeout D]
//	immunityd [-phones N] [-procs N] [-threshold N] [-timeout D] [-transport loopback|tcp]
//	immunityd -propagation [-procs N] [-sigs N] [-tcp]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/dimmunix/dimmunix/internal/immunity"
	"github.com/dimmunix/dimmunix/internal/immunity/wire"
	"github.com/dimmunix/dimmunix/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "immunityd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("immunityd", flag.ContinueOnError)
	phones := fs.Int("phones", 4, "simulated phones in the fleet")
	procs := fs.Int("procs", 3, "live application processes per phone")
	threshold := fs.Int("threshold", 2, "distinct devices that must confirm a signature before fleet-wide arming")
	timeout := fs.Duration("timeout", 30*time.Second, "scenario deadline")
	transport := fs.String("transport", "loopback", "simulation transport: loopback or tcp")
	propagation := fs.Bool("propagation", false, "measure only the publish→all-armed latency")
	sigs := fs.Int("sigs", 64, "signatures to publish in -propagation mode")
	tcp := fs.Bool("tcp", false, "with -propagation: measure the cross-device tier over TCP instead of the on-device tier")
	serve := fs.Bool("serve", false, "run as a long-lived exchange daemon")
	listen := fs.String("listen", "127.0.0.1:7676", "with -serve: TCP listen address for the exchange wire protocol")
	httpAddr := fs.String("http", "127.0.0.1:7677", "with -serve: HTTP listen address for /status (empty disables)")
	provenance := fs.String("provenance", "", "with -serve: provenance store file (empty keeps fleet state in memory only)")
	connect := fs.String("connect", "", "run the fleet workload in client mode against the exchange daemon at this address")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *serve {
		return runServe(*listen, *httpAddr, *threshold, *provenance)
	}

	if *propagation {
		var res workload.PropagationResult
		var err error
		if *tcp {
			res, err = workload.PropagationLatencyTCP(*procs, *sigs)
		} else {
			res, err = workload.PropagationLatency(*procs, *sigs)
		}
		if err != nil {
			return err
		}
		fmt.Print(workload.FormatPropagation(res))
		return nil
	}

	cfg := workload.FleetImmunityConfig{
		Phones:           *phones,
		ProcsPerPhone:    *procs,
		ConfirmThreshold: *threshold,
		Timeout:          *timeout,
		Transport:        workload.FleetTransport(*transport),
		Dial:             *connect,
	}
	res, err := workload.RunFleetImmunity(cfg)
	if err != nil {
		return err
	}
	fmt.Print(workload.FormatFleetImmunity(res))
	return nil
}

// daemon is a running serve-mode instance.
type daemon struct {
	hub     *immunity.Exchange
	srv     *immunity.ExchangeServer
	httpSrv *http.Server
	httpLn  net.Listener
}

// Addr returns the exchange's bound TCP address.
func (d *daemon) Addr() string { return d.srv.Addr() }

// HTTPAddr returns the bound /status address, or "".
func (d *daemon) HTTPAddr() string {
	if d.httpLn == nil {
		return ""
	}
	return d.httpLn.Addr().String()
}

// Close tears the daemon down.
func (d *daemon) Close() {
	if d.httpSrv != nil {
		d.httpSrv.Close()
	}
	d.srv.Close()
	d.hub.Close()
}

// startDaemon boots the exchange server and the /status endpoint.
func startDaemon(listen, httpAddr string, threshold int, provenancePath string) (*daemon, error) {
	var opts []immunity.ExchangeOption
	if provenancePath != "" {
		opts = append(opts, immunity.WithProvenanceStore(immunity.NewFileProvenance(provenancePath)))
	}
	hub, err := immunity.NewExchange(threshold, opts...)
	if err != nil {
		return nil, err
	}
	srv, err := immunity.ServeTCP(hub, listen)
	if err != nil {
		hub.Close()
		return nil, err
	}
	d := &daemon{hub: hub, srv: srv}
	if httpAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(hub.Status()); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		ln, err := net.Listen("tcp", httpAddr)
		if err != nil {
			d.Close()
			return nil, fmt.Errorf("http listen: %w", err)
		}
		d.httpLn = ln
		d.httpSrv = &http.Server{Handler: mux}
		go func() {
			if err := d.httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "immunityd: http:", err)
			}
		}()
	}
	return d, nil
}

// runServe boots the long-running daemon and blocks until
// SIGINT/SIGTERM.
func runServe(listen, httpAddr string, threshold int, provenancePath string) error {
	d, err := startDaemon(listen, httpAddr, threshold, provenancePath)
	if err != nil {
		return err
	}
	defer d.Close()
	fmt.Printf("immunityd: exchange on %s (threshold %d, protocol v%d", d.Addr(), threshold, wire.Version)
	if provenancePath != "" {
		fmt.Printf(", provenance %s", provenancePath)
	}
	fmt.Println(")")
	if st := d.hub.Status(); len(st.Provenance) > 0 {
		fmt.Printf("immunityd: resumed %d signatures from provenance, fleet epoch %d\n", len(st.Provenance), st.Epoch)
	}
	if addr := d.HTTPAddr(); addr != "" {
		fmt.Printf("immunityd: status on http://%s/status\n", addr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("immunityd: shutting down")
	return nil
}
