// Command immunityd is the fleet immunity daemon and its test harness.
//
// In serve mode it is a long-running hub: the signature exchange served
// over TCP (the versioned wire protocol of internal/immunity/wire),
// durable provenance in a file store so a daemon restart loses no
// confirmation and never re-arms below threshold, and an HTTP server
// with three endpoints: /status exposing the fleet epoch, per-signature
// provenance, connected devices, delta-batching counters, and the live
// per-second rate windows as JSON; /metrics exposing the hub's full
// instrument registry (internal/immunity/metrics) in Prometheus text
// format — session gauges, push-queue depth/in-flight, drain batch-size
// and coalesce-ratio histograms, report-handling latency (wait-included
// and wait-excluded), per-peer forward outbox lag and redial counters,
// persist/compaction errors, admission verdicts, build info, uptime,
// windowed rate gauges (immunity_hub_reports_per_second{window="1m"}
// and friends), and SLO state; and /slo exposing each objective's
// ok/warn/breach verdict, breach count, and last transition as JSON.
//
// Report-path admission control is enabled with -admit N: at most N
// report messages (device reports and peer forward-reports) are
// processed concurrently, an over-capacity message waits up to
// -admit-wait (the device sees a slow ack; TCP sees backpressure), and
// a message still waiting at the deadline is shed — dropped without
// killing the session, recovered by the client's full-history re-report
// on its next reconnect. A report storm therefore degrades to bounded
// delay instead of unbounded hub memory; watch it live in the
// immunity_hub_admission_* series on /metrics.
//
// -admit auto replaces the fixed capacity with an AIMD controller: the
// daemon samples its own counters every -slo-interval, evaluates the
// report-latency objective (p99 wait-included report handling ≤
// -slo-target over sliding windows) and the shed-zero objective, and
// resizes the admission pool on each verdict — additive increase while
// latency is ok and sessions were queueing, multiplicative decrease on
// breach or shed. Capacity converges to the widest value the latency
// target tolerates; the immunity_hub_admission_aimd_* counters on
// /metrics trace every step of the controller.
//
// With -hub and -peers, serve mode federates the daemon into a hub
// cluster (internal/immunity/cluster): each signature is owned by
// exactly one hub via a rendezvous ring over the member ids, non-owner
// hubs forward device reports to the owner, and the owner's armings are
// broadcast cluster-wide. Devices may attach to any hub. A 3-hub
// cluster on one machine:
//
//	immunityd -serve -hub hub0 -listen :7676 -http :7677 -peers hub1=localhost:7686,hub2=localhost:7696
//	immunityd -serve -hub hub1 -listen :7686 -http :7687 -peers hub0=localhost:7676,hub2=localhost:7696
//	immunityd -serve -hub hub2 -listen :7696 -http :7697 -peers hub0=localhost:7676,hub1=localhost:7686
//
// Membership is elastic: -peers (or its alias -join) is a seed, not the
// final roster — a joining hub may name a single existing member and
// learns the rest from membership snapshots, and every hub dials
// members it discovers at the address they advertise with -advertise
// (defaults to -listen; set it explicitly when -listen is a wildcard).
// With -failover-after D each hub runs a SWIM-style failure detector
// over its peer links: members are probed round-robin with direct
// pings, a missed ack triggers indirect ping-reqs relayed through
// other members, and only a member that answers nobody through the
// suspicion window is condemned — a slow or flapping link alone
// convicts no one. A condemned member's keys fail over to their
// deputies (which already hold replicas of the pending confirmation
// sets). Arming authority is a quorum lease: a hub arms and hands off
// only while a majority of the membership has acked its lease, so the
// minority side of a partition parks its threshold crossings (instead
// of arming a double) until the heal, when the parked decisions drain
// against the majority's arms; epoch fencing of a stale owner's
// replayed broadcasts remains as the backstop, and -no-lease restores
// the fencing-only merge semantics. -probe-interval/-probe-timeout/
// -probe-suspect/-probe-indirect and -lease-ttl override the windows
// derived from -failover-after. -leave makes shutdown graceful: the
// hub down-marks itself, hands its owned slice off, and drains its
// outboxes before exiting. The /status document shows the membership
// ring (members, liveness, epoch) and the peer links; /status?owner=
// KEY answers which hub owns — and which hub is deputy for — a
// signature key. -fault-isolate AFTER:DUR scripts a deterministic
// outage into a live hub (internal/immunity/fault): AFTER into the
// run its outbound peer links are cut — the asymmetric partition, it
// hears its peers while its acks, lease renewals, and broadcasts
// vanish — and DUR later the links heal; acceptance drives watch the
// log markers and the immunity_cluster_lease_* counters.
//
// The trust fabric is opt-in per daemon. -tls-cert/-tls-key serve the
// exchange listener under TLS; adding -tls-ca turns the cluster mutual:
// outbound peer links dial with the hub's own certificate, inbound
// peer-hellos must present a fleet-CA client certificate whose common
// name matches the claimed hub id, and a wrong-CA or misclaimed peer is
// refused and counted (immunity_hub_auth_failures_total{reason=
// "peer-identity"}). -auth-key (or -auth-keyring, a kid:key rotation
// file) requires every device hello to carry a bearer token minted
// under that key; the token's tenant claim scopes the session into an
// isolated tenant fleet — per-tenant signature keys, provenance,
// thresholds (-tenant-threshold tenant=N,...), pushes, and /status
// views. Two utilities mint the material and exit:
//
//	immunityd -gen-ca DIR                          # fleet CA → DIR/ca.pem + DIR/ca-key.pem
//	immunityd -gen-cert NAME -ca DIR [-hosts ...]  # leaf → DIR/NAME.pem + DIR/NAME-key.pem
//	immunityd -mint-token -auth-key K [-tenant T] [-device D] [-ttl D]
//
// Client and storm modes take -tls-ca (verify the daemons' server
// certificates) and -token (the bearer token every device hello
// carries) to drive authenticated daemons.
//
// On SLO breach/clear transitions serve mode can page: -alert-url POSTs
// the alert as JSON to a webhook, -alert-exec runs a shell command with
// the alert in IMMUNITY_ALERT_* env vars; a cooldown dedup guard keeps
// a flapping objective from paging repeatedly, and deliveries are
// counted in immunity_slo_alerts_total. Backlog objectives (-slo-backlog)
// watch the push-queue depth and summed forward-outbox lag; with -admit
// auto the AIMD controller retreats on backlog breaches too, not just
// report latency.
//
// -chaos runs the kill/restart acceptance drive in-process: a
// federation of -hubs hubs storms -sigs signatures from -phones
// devices while the owner of an in-flight slice is killed
// mid-confirmation and restarted (-kills cycles), then asserts
// federation equivalence — every hub converges to the single-hub
// reference's armed set with zero double-arms. -chaos -partition S
// swaps the kill for a network partition driven by the deterministic
// fault layer: S is symmetric (the minority hub is cut off entirely,
// loses its lease, and parks every crossing), asymmetric (only its
// outbound word is cut — it still hears the majority while its lease
// quietly dies), or flap (the link blinks faster than the suspicion
// window and nobody may be condemned). Each scenario asserts zero
// double-arms during the split and convergence to the single-hub
// reference after the heal; add -no-lease for the fencing-only
// regression baseline in which both sides arm and the union merge
// must still converge.
//
// In client mode it runs the fleet immunity workload against such
// daemons across real sockets; -connect takes one address — or a
// comma-separated list, across which the workload's phones attach
// round-robin to exercise a cluster. Without either flag it runs the
// self-contained simulation (in-process hub or cluster, loopback or TCP
// transport).
//
// -storm floods the exchange with per-signature report messages from
// -phones concurrent devices (against the daemons in -connect, or an
// in-process hub/cluster otherwise) and verifies every signature still
// arms cluster-wide — the admission-control acceptance drive. In the
// in-process form the admission counters are printed; against external
// daemons they are scraped from /metrics. With -ramp-warmup/-ramp-flood
// the storm is shaped instead of flat: a paced single-signature warmup
// at -ramp-rate reports/s (the demand signal that lets an AIMD
// controller grow), then a full-batch flood (the overload that makes it
// retreat) — pair it with in-process -admit auto, or aim it at daemons
// serving with -admit auto, to watch capacity adapt end to end.
//
// Usage:
//
//	immunityd -serve [-listen ADDR] [-http ADDR] [-threshold N] [-provenance FILE] [-admit N|auto -admit-wait D] [-slo-target D -slo-interval D -slo-backlog N] [-alert-url URL] [-alert-exec CMD] [-tls-cert F -tls-key F [-tls-ca F]] [-auth-key K | -auth-keyring F] [-tenant-threshold T=N,...] [-hub ID -peers ID=ADDR,... [-advertise ADDR] [-failover-after D] [-probe-interval D -probe-timeout D -probe-suspect D -probe-indirect N] [-lease-ttl D] [-no-lease] [-fault-isolate AFTER:DUR] [-leave]]
//	immunityd -connect ADDR[,ADDR...] [-phones N] [-procs N] [-threshold N] [-timeout D] [-tls-ca F] [-token T]
//	immunityd -storm [-connect ADDR[,ADDR...]] [-phones N] [-sigs N] [-threshold N] [-hubs N] [-admit N|auto -admit-wait D] [-ramp-warmup D -ramp-flood D -ramp-rate N] [-timeout D] [-tls-ca F] [-token T]
//	immunityd -gen-ca DIR | -gen-cert NAME -ca DIR [-hosts H,...] | -mint-token -auth-key K [-tenant T] [-device D] [-ttl D]
//	immunityd -chaos [-phones N] [-sigs N] [-threshold N] [-hubs N] [-kills N] [-failover-after D] [-timeout D]
//	immunityd -chaos -partition symmetric|asymmetric|flap [-no-lease] [-phones N] [-sigs N] [-threshold N] [-hubs N] [-failover-after D] [-timeout D]
//	immunityd [-phones N] [-procs N] [-threshold N] [-timeout D] [-transport loopback|tcp] [-hubs N]
//	immunityd -propagation [-procs N] [-sigs N] [-tcp]
package main

import (
	"crypto/tls"
	"crypto/x509"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/dimmunix/dimmunix/internal/immunity"
	"github.com/dimmunix/dimmunix/internal/immunity/auth"
	"github.com/dimmunix/dimmunix/internal/immunity/cluster"
	"github.com/dimmunix/dimmunix/internal/immunity/fault"
	"github.com/dimmunix/dimmunix/internal/immunity/metrics"
	"github.com/dimmunix/dimmunix/internal/immunity/wire"
	"github.com/dimmunix/dimmunix/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "immunityd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("immunityd", flag.ContinueOnError)
	phones := fs.Int("phones", 4, "simulated phones in the fleet")
	procs := fs.Int("procs", 3, "live application processes per phone")
	threshold := fs.Int("threshold", 2, "distinct devices that must confirm a signature before fleet-wide arming")
	timeout := fs.Duration("timeout", 30*time.Second, "scenario deadline")
	transport := fs.String("transport", "loopback", "simulation transport: loopback or tcp")
	propagation := fs.Bool("propagation", false, "measure only the publish→all-armed latency")
	sigs := fs.Int("sigs", 64, "signatures to publish in -propagation mode")
	tcp := fs.Bool("tcp", false, "with -propagation: measure the cross-device tier over TCP instead of the on-device tier")
	serve := fs.Bool("serve", false, "run as a long-lived exchange daemon")
	listen := fs.String("listen", "127.0.0.1:7676", "with -serve: TCP listen address for the exchange wire protocol")
	httpAddr := fs.String("http", "127.0.0.1:7677", "with -serve: HTTP listen address for /status (empty disables)")
	provenance := fs.String("provenance", "", "with -serve: provenance store file (empty keeps fleet state in memory only)")
	hubID := fs.String("hub", "", "with -serve: this hub's cluster id (required with -peers)")
	peers := fs.String("peers", "", "with -serve: comma-separated id=addr peer hubs to federate with (a seed — the rest of the membership is learned)")
	join := fs.String("join", "", "with -serve: alias of -peers (a joining hub may name a single existing member)")
	advertise := fs.String("advertise", "", "with -serve and federation: the address other members dial this hub at (default: the -listen address)")
	failoverAfter := fs.Duration("failover-after", 0, "with -serve and federation (or -chaos): declare a member dead after its peer link is down this long and fail its keys over to deputies (0 disables)")
	leave := fs.Bool("leave", false, "with -serve and federation: leave the membership gracefully on shutdown (hand off owned keys, drain outboxes)")
	wirePin := fs.Int("wire-pin", 0, "with -serve: pin the negotiated wire version at this ceiling (0 = newest; 2 keeps the hub and its peer links on the JSON codec during a staged rollout)")
	hubs := fs.Int("hubs", 1, "simulation: federate the in-process exchange into this many hubs")
	connect := fs.String("connect", "", "run the fleet workload in client mode against the exchange daemon(s) at this comma-separated address list")
	admit := fs.String("admit", "", "report-path admission: a pool capacity, or 'auto' for AIMD adaptive capacity driven by the latency SLO (empty disables; applies to -serve and the in-process -storm)")
	admitWait := fs.Duration("admit-wait", 5*time.Second, "bounded wait before an over-capacity report is shed (keep well below the 30s wire write timeout)")
	sloTarget := fs.Duration("slo-target", 25*time.Millisecond, "latency SLO: p99 report-handling time (admission wait included) must stay at or under this")
	sloInterval := fs.Duration("slo-interval", time.Second, "SLO evaluation and rate-sampling tick")
	storm := fs.Bool("storm", false, "flood the exchange with per-signature reports from -phones devices and verify arming still completes")
	chaos := fs.Bool("chaos", false, "in-process kill/restart drive: storm a federation while killing and restarting an owner hub, then assert federation equivalence")
	kills := fs.Int("kills", 1, "with -chaos: kill/restart cycles")
	partition := fs.String("partition", "", "with -chaos: run a network-partition scenario (symmetric, asymmetric, or flap) instead of kill/restart — split the federation mid-storm, assert the minority parks under its lost lease, heal, assert convergence")
	probeInterval := fs.Duration("probe-interval", 0, "with federation failure detection: round-robin probe period (0 derives from -failover-after)")
	probeTimeout := fs.Duration("probe-timeout", 0, "with federation failure detection: direct ping-ack deadline before indirect probing (0 derives from -failover-after)")
	probeSuspect := fs.Duration("probe-suspect", 0, "with federation failure detection: suspicion hold before a silent member is condemned (0 derives from -failover-after)")
	probeIndirect := fs.Int("probe-indirect", 0, "with federation failure detection: proxy members asked to relay indirect ping-reqs per suspicion (0 = default 2)")
	leaseTTL := fs.Duration("lease-ttl", 0, "with federation failure detection: quorum-lease lifetime (0 derives from the probe windows; always clamped to probe-timeout+probe-suspect)")
	noLease := fs.Bool("no-lease", false, "with federation failure detection: disable the quorum lease and fall back to epoch fencing alone (both partition sides keep arming)")
	faultIsolate := fs.String("fault-isolate", "", "with -serve federation: AFTER:DUR — cut this hub's outbound peer links AFTER into the run and heal them DUR later (deterministic fault injection for acceptance drives)")
	rampWarmup := fs.Duration("ramp-warmup", 0, "with -storm: paced single-signature warmup phase before the flood")
	rampFlood := fs.Duration("ramp-flood", 0, "with -storm: continuous full-batch flood phase after the warmup")
	rampRate := fs.Int("ramp-rate", 20, "with -storm: warmup reports per second per device")
	genCA := fs.String("gen-ca", "", "utility: mint a dev fleet CA into this directory (ca.pem + ca-key.pem) and exit")
	genCert := fs.String("gen-cert", "", "utility: issue a leaf certificate with this name (the mutual-TLS peer identity) under the CA in -ca, writing NAME.pem + NAME-key.pem beside it, and exit")
	caDir := fs.String("ca", "", "with -gen-cert: directory holding ca.pem + ca-key.pem (as written by -gen-ca; defaults to the -gen-ca directory when both are given)")
	hostsFlag := fs.String("hosts", "", "with -gen-cert: comma-separated SAN hosts/IPs (default 127.0.0.1,::1,localhost)")
	mintToken := fs.Bool("mint-token", false, "utility: mint a device bearer token signed by -auth-key and exit (claims from -tenant, -device, -ttl)")
	tenantFlag := fs.String("tenant", "", "with -mint-token: the token's tenant claim (empty = the default tenant)")
	deviceFlag := fs.String("device", "*", "with -mint-token: the token's device claim ('*' = any device in the tenant)")
	ttl := fs.Duration("ttl", 0, "with -mint-token: token lifetime (0 = never expires)")
	tlsCert := fs.String("tls-cert", "", "with -serve: serve the exchange listener under TLS with this certificate (PEM; requires -tls-key)")
	tlsKey := fs.String("tls-key", "", "with -serve: the TLS certificate's private key (PEM)")
	tlsCA := fs.String("tls-ca", "", "trust anchors (PEM): with -serve, verifies peer-hub client certificates and outbound peer dials (mutual TLS); with -connect, verifies the daemons' server certificates")
	authKey := fs.String("auth-key", "", "with -serve: require token-authenticated hellos, verified under this static HMAC key (also the signing key for -mint-token)")
	authKeyring := fs.String("auth-keyring", "", "with -serve: require token-authenticated hellos, verified against this kid:key keyring file")
	tenantThresholdsFlag := fs.String("tenant-threshold", "", "with -serve: per-tenant confirm thresholds as tenant=N[,tenant=N...] (unlisted tenants use -threshold)")
	alertURL := fs.String("alert-url", "", "with -serve: POST SLO breach/clear alerts to this webhook URL as JSON")
	alertExec := fs.String("alert-exec", "", "with -serve: run this shell command on SLO breach/clear (alert in IMMUNITY_ALERT_* env)")
	tokenFlag := fs.String("token", "", "with -connect: bearer token each device's hello carries (for daemons serving with -auth-key/-auth-keyring)")
	backlogTarget := fs.Int("slo-backlog", 1024, "with -serve: backlog SLO target — the push-queue depth and the summed forward-outbox lag must each stay at or under this many frames")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *genCA != "" || *genCert != "" {
		return runGenTLS(*genCA, *genCert, *caDir, *hostsFlag)
	}
	if *mintToken {
		return runMintToken(*authKey, *tenantFlag, *deviceFlag, *ttl)
	}
	admitCap, admitAuto, err := parseAdmit(*admit)
	if err != nil {
		return err
	}

	if *serve {
		if *chaos {
			return fmt.Errorf("-chaos is an in-process drive, not a serve mode")
		}
		seed := *peers
		if *join != "" {
			if seed != "" {
				seed += ","
			}
			seed += *join
		}
		// Auth and TLS material come first: peer transports are built
		// from the seed below and must dial with the hub's certificate
		// when the cluster runs mutual TLS.
		var verifier auth.Verifier
		switch {
		case *authKey != "" && *authKeyring != "":
			return fmt.Errorf("-auth-key and -auth-keyring are mutually exclusive")
		case *authKey != "":
			verifier = auth.NewStatic([]byte(*authKey))
		case *authKeyring != "":
			var err error
			if verifier, err = auth.LoadKeyring(*authKeyring); err != nil {
				return err
			}
		}
		var serveTLS *tls.Config
		var peerDial []immunity.TCPOption
		peerAuth := false
		if *tlsCert != "" || *tlsKey != "" {
			if *tlsCert == "" || *tlsKey == "" {
				return fmt.Errorf("-tls-cert and -tls-key go together")
			}
			cert, err := tls.LoadX509KeyPair(*tlsCert, *tlsKey)
			if err != nil {
				return fmt.Errorf("tls keypair: %w", err)
			}
			var pool *x509.CertPool
			if *tlsCA != "" {
				if pool, err = loadCertPool(*tlsCA); err != nil {
					return err
				}
			}
			serveTLS = auth.ServerConfig(cert, pool)
			if pool != nil {
				// Mutual TLS material is complete: outbound peer links
				// dial with the hub's own certificate, and inbound
				// peer-hellos must carry a fleet-CA certificate naming
				// the claimed hub.
				peerDial = []immunity.TCPOption{immunity.WithDialTLS(auth.PeerConfig(cert, pool, ""))}
				peerAuth = true
			}
		} else if *tlsCA != "" {
			return fmt.Errorf("-tls-ca with -serve requires -tls-cert/-tls-key (the hub's own certificate)")
		}
		members, err := parsePeers(seed, peerDial...)
		if err != nil {
			return err
		}
		if len(members) > 0 && *hubID == "" {
			return fmt.Errorf("-peers/-join requires -hub (this hub's cluster id)")
		}
		if len(members) == 0 && (*advertise != "" || *failoverAfter != 0 || *leave) {
			return fmt.Errorf("-advertise/-failover-after/-leave apply to a federated hub (-peers/-join)")
		}
		if len(members) == 0 && (*probeInterval != 0 || *probeTimeout != 0 || *probeSuspect != 0 ||
			*probeIndirect != 0 || *leaseTTL != 0 || *noLease || *faultIsolate != "") {
			return fmt.Errorf("-probe-*/-lease-ttl/-no-lease/-fault-isolate apply to a federated hub (-peers/-join)")
		}
		if *partition != "" {
			return fmt.Errorf("-partition is an in-process -chaos scenario, not a serve mode")
		}
		faultAfter, faultDur, err := parseFaultIsolate(*faultIsolate)
		if err != nil {
			return err
		}
		if faultAfter > 0 && *failoverAfter == 0 {
			return fmt.Errorf("-fault-isolate needs -failover-after (without detection the isolation is just a stalled outbox)")
		}
		if *wirePin != 0 && (*wirePin < wire.MinVersion || *wirePin > wire.Version) {
			return fmt.Errorf("-wire-pin %d outside the supported range v%d..v%d", *wirePin, wire.MinVersion, wire.Version)
		}
		if len(members) > 0 && *wirePin != 0 && *wirePin < wire.PeerVersion {
			// A hub pinned below the peer message set would refuse every
			// inbound peer-hello while its own links kept dialing out —
			// half-broken federation with no error; refuse up front.
			return fmt.Errorf("-wire-pin %d is below the peer protocol floor v%d and would break federation (-peers)", *wirePin, wire.PeerVersion)
		}
		adv := *advertise
		if adv == "" {
			adv = *listen
		}
		sc := serveConfig{
			listen: *listen, httpAddr: *httpAddr, threshold: *threshold,
			provenance: *provenance, hubID: *hubID, peers: members,
			advertise: adv, failoverAfter: *failoverAfter, leave: *leave,
			probeInterval: *probeInterval, probeTimeout: *probeTimeout,
			probeSuspect: *probeSuspect, probeIndirect: *probeIndirect,
			leaseTTL: *leaseTTL, noLease: *noLease,
			faultAfter: faultAfter, faultDur: faultDur,
			wirePin: *wirePin, admit: admitCap, admitAuto: admitAuto,
			admitWait: *admitWait, sloTarget: *sloTarget, sloInterval: *sloInterval,
			backlogTarget: *backlogTarget, alertURL: *alertURL, alertExec: *alertExec,
			verifier: verifier, serveTLS: serveTLS, peerDial: peerDial, peerAuth: peerAuth,
		}
		if sc.tenantThresholds, err = parseTenantThresholds(*tenantThresholdsFlag); err != nil {
			return err
		}
		return runServe(sc)
	}
	if *peers != "" || *join != "" || *hubID != "" {
		return fmt.Errorf("-hub/-peers/-join only apply to -serve (use -hubs N for the simulation)")
	}
	if (*advertise != "" || *leave) && !*serve {
		return fmt.Errorf("-advertise/-leave only apply to -serve")
	}
	if *wirePin != 0 {
		return fmt.Errorf("-wire-pin only applies to -serve (the simulation and client mode always speak the newest version)")
	}
	if *tlsCert != "" || *tlsKey != "" || *authKey != "" || *authKeyring != "" ||
		*tenantThresholdsFlag != "" || *alertURL != "" || *alertExec != "" {
		return fmt.Errorf("-tls-cert/-tls-key/-auth-key/-auth-keyring/-tenant-threshold/-alert-url/-alert-exec only apply to -serve (or the -gen-ca/-gen-cert/-mint-token utilities)")
	}
	if (*tokenFlag != "" || *tlsCA != "") && *connect == "" {
		return fmt.Errorf("-token/-tls-ca outside -serve require -connect (client mode against authenticated daemons)")
	}
	var clientTLS *tls.Config
	if *tlsCA != "" {
		pool, err := loadCertPool(*tlsCA)
		if err != nil {
			return err
		}
		clientTLS = auth.ClientConfig(pool, "")
	}

	if *chaos {
		if *connect != "" {
			return fmt.Errorf("-chaos is in-process only (point -storm at external daemons and SIGKILL one instead)")
		}
		if *partition != "" {
			pcfg := workload.DefaultPartitionConfig()
			pcfg.Devices = *phones
			pcfg.Sigs = *sigs
			pcfg.ConfirmThreshold = *threshold
			if *hubs > 1 {
				pcfg.Hubs = *hubs
			}
			pcfg.Scenario = *partition
			pcfg.NoLease = *noLease
			if *failoverAfter > 0 {
				pcfg.FailoverAfter = *failoverAfter
			}
			pcfg.Timeout = *timeout
			res, err := workload.RunPartitionStorm(pcfg)
			if err != nil {
				return err
			}
			fmt.Print(workload.FormatPartition(res))
			return nil
		}
		cfg := workload.DefaultChaosConfig()
		cfg.Devices = *phones
		cfg.Sigs = *sigs
		cfg.ConfirmThreshold = *threshold
		if *hubs > 1 {
			cfg.Hubs = *hubs
		}
		cfg.Kills = *kills
		if *failoverAfter > 0 {
			cfg.FailoverAfter = *failoverAfter
		}
		cfg.Timeout = *timeout
		res, err := workload.RunChaosStorm(cfg)
		if err != nil {
			return err
		}
		fmt.Print(workload.FormatChaos(res))
		return nil
	}
	if *failoverAfter != 0 {
		return fmt.Errorf("-failover-after only applies to -serve federation and -chaos")
	}
	if *kills != 1 {
		return fmt.Errorf("-kills only applies to -chaos")
	}
	if *partition != "" || *noLease {
		return fmt.Errorf("-partition/-no-lease only apply to -chaos (or, for -no-lease, -serve federation)")
	}
	if *probeInterval != 0 || *probeTimeout != 0 || *probeSuspect != 0 || *probeIndirect != 0 || *leaseTTL != 0 {
		return fmt.Errorf("-probe-*/-lease-ttl only apply to -serve federation")
	}
	if *faultIsolate != "" {
		return fmt.Errorf("-fault-isolate only applies to -serve federation")
	}

	if *storm {
		cfg := workload.StormConfig{
			Devices:          *phones,
			Sigs:             *sigs,
			ConfirmThreshold: *threshold,
			Hubs:             *hubs,
			AdmitCapacity:    admitCap,
			AdmitAuto:        admitAuto,
			AdmitWait:        *admitWait,
			SLOTarget:        *sloTarget,
			SLOInterval:      *sloInterval,
			Timeout:          *timeout,
			Dial:             *connect,
			Token:            *tokenFlag,
			TLS:              clientTLS,
		}
		if *rampWarmup > 0 || *rampFlood > 0 {
			cfg.Ramp = &workload.StormRamp{
				Warmup: *rampWarmup, WarmupRate: *rampRate, Flood: *rampFlood,
			}
		}
		res, err := workload.RunReportStorm(cfg)
		if err != nil {
			return err
		}
		fmt.Print(workload.FormatStorm(res))
		return nil
	}
	if *admit != "" {
		return fmt.Errorf("-admit only applies to -serve and the in-process -storm")
	}
	if *rampWarmup != 0 || *rampFlood != 0 {
		return fmt.Errorf("-ramp-warmup/-ramp-flood only apply to -storm")
	}

	if *propagation {
		var res workload.PropagationResult
		var err error
		if *tcp {
			res, err = workload.PropagationLatencyTCP(*procs, *sigs)
		} else {
			res, err = workload.PropagationLatency(*procs, *sigs)
		}
		if err != nil {
			return err
		}
		fmt.Print(workload.FormatPropagation(res))
		return nil
	}

	cfg := workload.FleetImmunityConfig{
		Phones:           *phones,
		ProcsPerPhone:    *procs,
		ConfirmThreshold: *threshold,
		Timeout:          *timeout,
		Transport:        workload.FleetTransport(*transport),
		Hubs:             *hubs,
		Dial:             *connect,
		Token:            *tokenFlag,
		TLS:              clientTLS,
	}
	res, err := workload.RunFleetImmunity(cfg)
	if err != nil {
		return err
	}
	fmt.Print(workload.FormatFleetImmunity(res))
	return nil
}

// runGenTLS is the -gen-ca / -gen-cert utility: mint a dev fleet CA
// and issue leaf certificates under it. Both may be given at once
// (mint the CA, then issue a first leaf under it).
func runGenTLS(genCADir, certName, caDir, hosts string) error {
	if genCADir != "" {
		if err := os.MkdirAll(genCADir, 0o755); err != nil {
			return err
		}
		// Name the CA after its directory so two fleets' CAs get
		// distinct subjects: a peer dialing with a foreign-CA leaf then
		// withholds it (no acceptable issuer) and is refused at the
		// hello identity gate instead of failing mid-handshake.
		name := filepath.Base(filepath.Clean(genCADir))
		if name == "." || name == string(filepath.Separator) {
			name = "immunity-fleet-ca"
		}
		ca, err := auth.NewCA(name)
		if err != nil {
			return err
		}
		certFile := filepath.Join(genCADir, "ca.pem")
		keyFile := filepath.Join(genCADir, "ca-key.pem")
		if err := ca.Save(certFile, keyFile); err != nil {
			return err
		}
		fmt.Printf("immunityd: fleet CA written to %s (key %s)\n", certFile, keyFile)
		if caDir == "" {
			caDir = genCADir
		}
	}
	if certName == "" {
		return nil
	}
	if caDir == "" {
		return fmt.Errorf("-gen-cert requires -ca DIR (or a -gen-ca in the same run)")
	}
	ca, err := auth.LoadCA(filepath.Join(caDir, "ca.pem"), filepath.Join(caDir, "ca-key.pem"))
	if err != nil {
		return err
	}
	var sans []string
	for _, h := range strings.Split(hosts, ",") {
		if h = strings.TrimSpace(h); h != "" {
			sans = append(sans, h)
		}
	}
	if len(sans) == 0 {
		sans = []string{"127.0.0.1", "::1", "localhost"}
	}
	certPEM, keyPEM, err := ca.Issue(certName, sans)
	if err != nil {
		return err
	}
	certFile := filepath.Join(caDir, certName+".pem")
	keyFile := filepath.Join(caDir, certName+"-key.pem")
	if err := os.WriteFile(certFile, certPEM, 0o644); err != nil {
		return err
	}
	if err := os.WriteFile(keyFile, keyPEM, 0o600); err != nil {
		return err
	}
	fmt.Printf("immunityd: certificate %q written to %s (key %s)\n", certName, certFile, keyFile)
	return nil
}

// runMintToken is the -mint-token utility: sign a bearer token for a
// device (or a tenant-wide wildcard) under the -auth-key and print it.
func runMintToken(key, tenant, device string, ttl time.Duration) error {
	if key == "" {
		return fmt.Errorf("-mint-token requires -auth-key (the signing key the hubs verify with)")
	}
	c := auth.Claims{Tenant: tenant, Device: device}
	if ttl > 0 {
		c.Exp = time.Now().Add(ttl).Unix()
	}
	token, err := auth.Mint([]byte(key), c)
	if err != nil {
		return err
	}
	fmt.Println(token)
	return nil
}

// parseAdmit parses the -admit flag: "" disables, "auto" selects the
// AIMD adaptive pool, anything else is a fixed capacity.
func parseAdmit(s string) (capacity int, auto bool, err error) {
	switch s {
	case "":
		return 0, false, nil
	case "auto":
		return 0, true, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, false, fmt.Errorf("-admit %q: want a capacity or 'auto'", s)
	}
	return n, false, nil
}

// parsePeers parses "-peers id=addr,id=addr" into cluster members whose
// transports dial with the given options (mutual-TLS material when the
// cluster is authenticated).
func parsePeers(s string, dial ...immunity.TCPOption) ([]cluster.Member, error) {
	var out []cluster.Member
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("malformed -peers entry %q (want id=addr)", part)
		}
		out = append(out, cluster.Member{ID: id, Transport: immunity.NewTCPTransport(addr, dial...)})
	}
	return out, nil
}

// parseTenantThresholds parses "-tenant-threshold tenant=N[,tenant=N]"
// into the per-tenant confirm-threshold map.
func parseTenantThresholds(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]int)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		tenant, val, ok := strings.Cut(part, "=")
		if !ok || tenant == "" {
			return nil, fmt.Errorf("malformed -tenant-threshold entry %q (want tenant=N)", part)
		}
		n, err := strconv.Atoi(val)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("-tenant-threshold %q: want a positive count", part)
		}
		out[tenant] = n
	}
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}

// loadCertPool reads a PEM bundle of trust anchors.
func loadCertPool(path string) (*x509.CertPool, error) {
	pem, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tls ca: %w", err)
	}
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(pem) {
		return nil, fmt.Errorf("tls ca: no certificates in %s", path)
	}
	return pool, nil
}

// daemon is a running serve-mode instance.
type daemon struct {
	hub      *immunity.Exchange
	node     *cluster.Node
	srv      *immunity.ExchangeServer
	httpSrv  *http.Server
	httpLn   net.Listener
	rates    *metrics.Rates
	eval     *metrics.Evaluator
	adaptive *metrics.AdaptivePool
	alerter  *metrics.Alerter
	// faultStop cancels a pending -fault-isolate script on shutdown.
	faultStop chan struct{}
}

// Addr returns the exchange's bound TCP address.
func (d *daemon) Addr() string { return d.srv.Addr() }

// HTTPAddr returns the bound /status address, or "".
func (d *daemon) HTTPAddr() string {
	if d.httpLn == nil {
		return ""
	}
	return d.httpLn.Addr().String()
}

// Close tears the daemon down.
func (d *daemon) Close() {
	if d.faultStop != nil {
		close(d.faultStop)
	}
	if d.httpSrv != nil {
		d.httpSrv.Close()
	}
	if d.node != nil {
		d.node.Close()
	}
	d.srv.Close()
	d.hub.Close()
	d.rates.Stop()
	if d.alerter != nil {
		d.alerter.Close()
	}
}

// serveConfig carries everything serve mode needs. Zero sloTarget and
// sloInterval re-default in startDaemon (25ms / 1s), so tests building
// the struct directly get working objectives.
type serveConfig struct {
	listen, httpAddr string
	threshold        int
	provenance       string
	hubID            string
	peers            []cluster.Member
	advertise        string
	failoverAfter    time.Duration
	probeInterval    time.Duration
	probeTimeout     time.Duration
	probeSuspect     time.Duration
	probeIndirect    int
	leaseTTL         time.Duration
	noLease          bool
	faultAfter       time.Duration
	faultDur         time.Duration
	leave            bool
	wirePin          int
	admit            int
	admitAuto        bool
	admitWait        time.Duration
	sloTarget        time.Duration
	sloInterval      time.Duration
	backlogTarget    int
	alertURL         string
	alertExec        string
	serveTLS         *tls.Config
	peerDial         []immunity.TCPOption
	peerAuth         bool
	verifier         auth.Verifier
	tenantThresholds map[string]int
}

// buildVersion stamps the immunity_build_info gauge; bump it with the
// roadmap's PR sequence.
const buildVersion = "0.10.0"

// parseFaultIsolate parses the -fault-isolate AFTER:DUR script: block
// the hub's outbound peer links AFTER into the run, heal them DUR
// later. Empty input means no script.
func parseFaultIsolate(s string) (after, dur time.Duration, err error) {
	if s == "" {
		return 0, 0, nil
	}
	i := strings.IndexByte(s, ':')
	if i < 0 {
		return 0, 0, fmt.Errorf("-fault-isolate wants AFTER:DUR (e.g. 5s:3s), got %q", s)
	}
	if after, err = time.ParseDuration(s[:i]); err != nil {
		return 0, 0, fmt.Errorf("-fault-isolate AFTER: %w", err)
	}
	if dur, err = time.ParseDuration(s[i+1:]); err != nil {
		return 0, 0, fmt.Errorf("-fault-isolate DUR: %w", err)
	}
	if after <= 0 || dur <= 0 {
		return 0, 0, fmt.Errorf("-fault-isolate AFTER and DUR must both be positive, got %s:%s", after, dur)
	}
	return after, dur, nil
}

// startDaemon boots the exchange server, the optional cluster node, and
// the /status + /metrics + /slo endpoints. One registry is shared by
// the hub, the cluster links, the provenance store, and the rate/SLO
// control plane, so /metrics is the whole daemon on one page.
func startDaemon(sc serveConfig) (*daemon, error) {
	if sc.sloTarget <= 0 {
		sc.sloTarget = 25 * time.Millisecond
	}
	if sc.sloInterval <= 0 {
		sc.sloInterval = time.Second
	}
	if sc.backlogTarget <= 0 {
		sc.backlogTarget = 1024
	}
	reg := metrics.NewRegistry()
	reg.Info("immunity_build_info", "Build and protocol metadata (value is always 1).",
		[2]string{"version", buildVersion},
		[2]string{"wire_min", strconv.Itoa(wire.MinVersion)},
		[2]string{"wire_max", strconv.Itoa(wire.Version)})

	// The rate sampler turns the registry's counters into windowed
	// per-second gauges and feeds the SLO evaluator; both tick on
	// sloInterval. Families are resolved lazily, so tracking before the
	// hub registers them is fine, and per-peer series appear as peers do.
	rates := metrics.NewRates(reg, metrics.RatesConfig{Interval: sc.sloInterval})
	for _, name := range []string{
		"immunity_hub_reports_total",
		"immunity_hub_confirmations_total",
		"immunity_hub_armed_total",
		"immunity_hub_echoes_total",
		"immunity_hub_forwards_total",
		"immunity_hub_remote_installs_total",
		"immunity_hub_admission_shed_total",
		"immunity_cluster_peer_forwards_total",
		"immunity_cluster_applied_total",
	} {
		rates.TrackCounter(name)
	}
	rates.TrackHistogram("immunity_hub_report_seconds")
	rates.TrackHistogram("immunity_hub_report_handle_seconds")
	eval := metrics.NewEvaluator(reg, rates, []metrics.SLO{
		{Name: "report-latency", QuantileOf: "immunity_hub_report_seconds",
			Target: sc.sloTarget.Seconds()},
		{Name: "shed-zero", RateOf: "immunity_hub_admission_shed_total", Target: 0},
		// Backlog objectives read the queue-depth gauges directly: the
		// push queue serving devices and the summed per-peer forward
		// outboxes. Either one growing past the target means the hub is
		// falling behind even if report latency still looks fine.
		{Name: "push-backlog", GaugeOf: "immunity_hub_push_pending",
			Target: float64(sc.backlogTarget)},
		{Name: "forward-backlog", GaugeOf: "immunity_cluster_forward_pending",
			Target: float64(sc.backlogTarget)},
	})
	uptime := reg.FloatGauge("immunity_hub_uptime_seconds", "Seconds since daemon start.")
	started := time.Now()
	rates.OnTick(func() { uptime.Set(time.Since(started).Seconds()) })

	opts := []immunity.ExchangeOption{immunity.WithMetricsRegistry(reg)}
	if sc.provenance != "" {
		opts = append(opts, immunity.WithProvenanceStore(immunity.NewFileProvenance(sc.provenance,
			immunity.WithCompactionCounters(
				reg.Counter("immunity_provenance_compactions_total", "Provenance log compactions."),
				reg.Counter("immunity_provenance_compact_errors_total", "Failed provenance log compactions.")))))
	}
	if sc.wirePin != 0 {
		// Pin both the hub's inbound negotiation and (below) the
		// outbound peer links: a -wire-pin 2 daemon speaks JSON
		// everywhere however new its binary is.
		opts = append(opts, immunity.WithWireCeiling(sc.wirePin))
	}
	var adaptive *metrics.AdaptivePool
	if sc.admitAuto {
		adaptive = metrics.NewAdaptivePool(reg, "immunity_hub_admission", sc.admitWait,
			metrics.AIMDConfig{SLO: "report-latency",
				SLOs: []string{"push-backlog", "forward-backlog"}})
		adaptive.Bind(eval)
		opts = append(opts, immunity.WithAdmissionPool(adaptive.Pool))
	} else if sc.admit > 0 {
		opts = append(opts, immunity.WithAdmission(sc.admit, sc.admitWait))
	}
	if sc.verifier != nil {
		opts = append(opts, immunity.WithAuthVerifier(sc.verifier))
	}
	if sc.peerAuth {
		opts = append(opts, immunity.WithPeerAuth())
	}
	for tenant, threshold := range sc.tenantThresholds {
		opts = append(opts, immunity.WithTenantThreshold(tenant, threshold))
	}
	hub, err := immunity.NewExchange(sc.threshold, opts...)
	if err != nil {
		return nil, err
	}
	var node *cluster.Node
	var fnet *fault.Network
	if len(sc.peers) > 0 {
		// Federate before the listener is up: the ring must be bound
		// before the first device report or inbound peer-hello arrives.
		// Resolve lets the node dial members it did not start with — a
		// joiner admitted from its peer-hello, a member learned from a
		// membership snapshot — at the address they advertise.
		peers := sc.peers
		if sc.faultAfter > 0 {
			// -fault-isolate: thread every outbound peer transport through
			// a fault network so the script below can cut this hub's
			// outbound word (the asymmetric-partition shape: it still
			// hears its peers, but its acks, lease renewals, and
			// broadcasts vanish) and later heal it.
			fnet = fault.NewNetwork()
			peers = make([]cluster.Member, len(sc.peers))
			for i, m := range sc.peers {
				m.Transport = fnet.Wrap(sc.hubID, m.ID, m.Transport)
				peers[i] = m
			}
		}
		node, err = cluster.New(cluster.Config{
			Self: sc.hubID, SelfAddr: sc.advertise, Hub: hub, Peers: peers,
			Resolve: func(m wire.MemberInfo) immunity.Transport {
				if m.Addr == "" {
					return nil
				}
				t := immunity.NewTCPTransport(m.Addr, sc.peerDial...)
				if fnet != nil {
					return fnet.Wrap(sc.hubID, m.ID, t)
				}
				return t
			},
			FailoverAfter: sc.failoverAfter,
			ProbeInterval: sc.probeInterval, ProbeTimeout: sc.probeTimeout,
			ProbeSuspect: sc.probeSuspect, ProbeIndirect: sc.probeIndirect,
			LeaseTTL: sc.leaseTTL, NoLease: sc.noLease,
			WireCeiling: sc.wirePin, Metrics: reg,
		})
		if err != nil {
			hub.Close()
			return nil, err
		}
	}
	var serveOpts []immunity.ServeOption
	if sc.serveTLS != nil {
		serveOpts = append(serveOpts, immunity.WithServeTLS(sc.serveTLS))
	}
	srv, err := immunity.ServeTCP(hub, sc.listen, serveOpts...)
	if err != nil {
		if node != nil {
			node.Close()
		}
		hub.Close()
		return nil, err
	}
	d := &daemon{hub: hub, node: node, srv: srv,
		rates: rates, eval: eval, adaptive: adaptive}
	if fnet != nil {
		// The -fault-isolate script: AFTER into the run, cut this hub's
		// outbound word to every member it knows (the asymmetric
		// partition — inbound sessions its peers dialed still deliver);
		// DUR later, heal, severing every session the block touched so
		// fresh handshakes resume from their cursors. The log lines are
		// the acceptance drive's timing markers.
		d.faultStop = make(chan struct{})
		go func(stop chan struct{}, n *cluster.Node) {
			select {
			case <-time.After(sc.faultAfter):
			case <-stop:
				return
			}
			members := n.Ring().Members()
			for _, m := range members {
				if m != sc.hubID {
					fnet.Block(sc.hubID, m)
				}
			}
			fmt.Printf("immunityd: fault-isolate: outbound peer links cut (%d members, heal in %s)\n",
				len(members)-1, sc.faultDur)
			select {
			case <-time.After(sc.faultDur):
			case <-stop:
				return
			}
			fnet.Heal()
			fmt.Println("immunityd: fault-isolate: healed")
		}(d.faultStop, node)
	}
	if sc.alertURL != "" || sc.alertExec != "" {
		d.alerter = metrics.NewAlerter(reg, metrics.AlertConfig{
			URL: sc.alertURL, Exec: sc.alertExec})
		d.alerter.Watch(eval)
	}
	if sc.httpAddr != "" {
		writeJSON := func(w http.ResponseWriter, v any) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(v); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
			if key := r.URL.Query().Get("owner"); key != "" {
				if node == nil {
					http.Error(w, "not a federated hub", http.StatusNotFound)
					return
				}
				owner, deputy := node.OwnerDeputy(key)
				writeJSON(w, ownerPayload{Key: key, Owner: owner, Deputy: deputy})
				return
			}
			p := statusPayload{Status: hub.Status(), Rates: rates.Snapshot()}
			if node != nil {
				p.Links = node.Status()
			}
			writeJSON(w, p)
		})
		mux.HandleFunc("/slo", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, eval.Snapshot())
		})
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := reg.WritePrometheus(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		ln, err := net.Listen("tcp", sc.httpAddr)
		if err != nil {
			d.Close()
			return nil, fmt.Errorf("http listen: %w", err)
		}
		d.httpLn = ln
		d.httpSrv = &http.Server{Handler: mux}
		go func() {
			if err := d.httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "immunityd: http:", err)
			}
		}()
	}
	rates.Start()
	return d, nil
}

// statusPayload is the /status document: the wire status (whose cluster
// section carries the membership ring with liveness and epoch) plus the
// node's peer-link states and the windowed per-second rates of every
// tracked counter series.
type statusPayload struct {
	wire.Status
	Links []cluster.PeerStatus          `json:"links,omitempty"`
	Rates map[string]map[string]float64 `json:"rates,omitempty"`
}

// ownerPayload answers /status?owner=KEY: which hub owns the signature
// key under the current ring, and which hub is its deputy (the failover
// target holding the replicated pending set).
type ownerPayload struct {
	Key    string `json:"key"`
	Owner  string `json:"owner"`
	Deputy string `json:"deputy,omitempty"`
}

// runServe boots the long-running daemon and blocks until
// SIGINT/SIGTERM.
func runServe(sc serveConfig) error {
	d, err := startDaemon(sc)
	if err != nil {
		return err
	}
	defer d.Close()
	maxV := wire.Version
	if sc.wirePin >= wire.MinVersion && sc.wirePin < maxV {
		maxV = sc.wirePin
	}
	fmt.Printf("immunityd: exchange on %s (threshold %d, protocol v%d..%d", d.Addr(), sc.threshold, wire.MinVersion, maxV)
	if sc.provenance != "" {
		fmt.Printf(", provenance %s", sc.provenance)
	}
	switch {
	case sc.admitAuto:
		cfg := d.adaptive.Config()
		fmt.Printf(", admission auto (AIMD %d..%d from %d, max wait %s)",
			cfg.Min, cfg.Max, cfg.Initial, sc.admitWait)
	case sc.admit > 0:
		fmt.Printf(", admission %d/%s", sc.admit, sc.admitWait)
	}
	fmt.Println(")")
	backlog := sc.backlogTarget
	if backlog <= 0 {
		backlog = 1024
	}
	fmt.Printf("immunityd: slo report-latency p99<=%s, shed-zero, push/forward backlog<=%d; evaluated every %s (see /slo)\n",
		sc.sloTarget, backlog, sc.sloInterval)
	if sc.serveTLS != nil {
		if sc.peerAuth {
			fmt.Println("immunityd: mutual TLS on (devices verify the hub; peer hubs present fleet-CA certificates)")
		} else {
			fmt.Println("immunityd: TLS on (devices verify the hub's certificate)")
		}
	}
	if sc.verifier != nil {
		fmt.Println("immunityd: token auth required (hellos must carry a bearer token)")
	}
	if len(sc.tenantThresholds) > 0 {
		parts := make([]string, 0, len(sc.tenantThresholds))
		for tenant, n := range sc.tenantThresholds {
			parts = append(parts, fmt.Sprintf("%s=%d", tenant, n))
		}
		sort.Strings(parts)
		fmt.Printf("immunityd: per-tenant thresholds %s (others %d)\n", strings.Join(parts, " "), sc.threshold)
	}
	if sc.alertURL != "" || sc.alertExec != "" {
		fmt.Println("immunityd: slo alerting armed (breach/clear transitions page)")
	}
	if d.node != nil {
		fmt.Printf("immunityd: cluster hub %s federating with %d seed peer(s): %s\n",
			sc.hubID, len(sc.peers), strings.Join(d.node.Ring().Members(), " "))
		fmt.Printf("immunityd: membership epoch %d, advertising %s", d.node.Epoch(), sc.advertise)
		if sc.failoverAfter > 0 {
			fmt.Printf(", failover after %s", sc.failoverAfter)
			if sc.noLease {
				fmt.Printf(", probe detection on, quorum lease OFF (epoch fencing only)")
			} else {
				fmt.Printf(", probe detection + quorum lease on")
			}
		}
		fmt.Println()
		if sc.faultAfter > 0 {
			fmt.Printf("immunityd: fault-isolate armed: outbound cut at +%s, heal %s later\n",
				sc.faultAfter, sc.faultDur)
		}
	}
	if st := d.hub.Status(); len(st.Provenance) > 0 {
		fmt.Printf("immunityd: resumed %d signatures from provenance, fleet epoch %d\n", len(st.Provenance), st.Epoch)
	}
	if addr := d.HTTPAddr(); addr != "" {
		fmt.Printf("immunityd: status on http://%s/status, metrics on http://%s/metrics\n", addr, addr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	if sc.leave && d.node != nil {
		fmt.Println("immunityd: leaving the membership (handing off owned keys)")
		d.node.Leave()
	}
	fmt.Println("immunityd: shutting down")
	return nil
}
