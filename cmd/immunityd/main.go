// Command immunityd runs the platform immunity distribution tier against
// a simulated fleet: per-phone immunity services (the single writer of
// each device's history, hot-installing antibodies into live processes)
// connected through a signature exchange with a confirm-before-arm
// threshold. It injects a real deadlock on enough phones to cross the
// threshold and prints the measured propagation timeline and the fleet
// provenance table.
//
// Usage:
//
//	immunityd [-phones N] [-procs N] [-threshold N] [-timeout D]
//	immunityd -propagation [-procs N] [-sigs N]   # on-device tier only
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/dimmunix/dimmunix/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "immunityd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("immunityd", flag.ContinueOnError)
	phones := fs.Int("phones", 4, "simulated phones in the fleet")
	procs := fs.Int("procs", 3, "live application processes per phone")
	threshold := fs.Int("threshold", 2, "distinct devices that must confirm a signature before fleet-wide arming")
	timeout := fs.Duration("timeout", 30*time.Second, "scenario deadline")
	propagation := fs.Bool("propagation", false, "measure only the on-device publish→all-armed latency")
	sigs := fs.Int("sigs", 64, "signatures to publish in -propagation mode")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *propagation {
		res, err := workload.PropagationLatency(*procs, *sigs)
		if err != nil {
			return err
		}
		fmt.Print(workload.FormatPropagation(res))
		return nil
	}

	cfg := workload.FleetImmunityConfig{
		Phones:           *phones,
		ProcsPerPhone:    *procs,
		ConfirmThreshold: *threshold,
		Timeout:          *timeout,
	}
	res, err := workload.RunFleetImmunity(cfg)
	if err != nil {
		return err
	}
	fmt.Print(workload.FormatFleetImmunity(res))
	return nil
}
