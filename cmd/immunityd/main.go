// Command immunityd is the fleet immunity daemon and its test harness.
//
// In serve mode it is a long-running hub: the signature exchange served
// over TCP (the versioned wire protocol of internal/immunity/wire),
// durable provenance in a file store so a daemon restart loses no
// confirmation and never re-arms below threshold, and an HTTP server
// with three endpoints: /status exposing the fleet epoch, per-signature
// provenance, connected devices, delta-batching counters, and the live
// per-second rate windows as JSON; /metrics exposing the hub's full
// instrument registry (internal/immunity/metrics) in Prometheus text
// format — session gauges, push-queue depth/in-flight, drain batch-size
// and coalesce-ratio histograms, report-handling latency (wait-included
// and wait-excluded), per-peer forward outbox lag and redial counters,
// persist/compaction errors, admission verdicts, build info, uptime,
// windowed rate gauges (immunity_hub_reports_per_second{window="1m"}
// and friends), and SLO state; and /slo exposing each objective's
// ok/warn/breach verdict, breach count, and last transition as JSON.
//
// Report-path admission control is enabled with -admit N: at most N
// report messages (device reports and peer forward-reports) are
// processed concurrently, an over-capacity message waits up to
// -admit-wait (the device sees a slow ack; TCP sees backpressure), and
// a message still waiting at the deadline is shed — dropped without
// killing the session, recovered by the client's full-history re-report
// on its next reconnect. A report storm therefore degrades to bounded
// delay instead of unbounded hub memory; watch it live in the
// immunity_hub_admission_* series on /metrics.
//
// -admit auto replaces the fixed capacity with an AIMD controller: the
// daemon samples its own counters every -slo-interval, evaluates the
// report-latency objective (p99 wait-included report handling ≤
// -slo-target over sliding windows) and the shed-zero objective, and
// resizes the admission pool on each verdict — additive increase while
// latency is ok and sessions were queueing, multiplicative decrease on
// breach or shed. Capacity converges to the widest value the latency
// target tolerates; the immunity_hub_admission_aimd_* counters on
// /metrics trace every step of the controller.
//
// With -hub and -peers, serve mode federates the daemon into a hub
// cluster (internal/immunity/cluster): each signature is owned by
// exactly one hub via a rendezvous ring over the member ids, non-owner
// hubs forward device reports to the owner, and the owner's armings are
// broadcast cluster-wide. Devices may attach to any hub. A 3-hub
// cluster on one machine:
//
//	immunityd -serve -hub hub0 -listen :7676 -http :7677 -peers hub1=localhost:7686,hub2=localhost:7696
//	immunityd -serve -hub hub1 -listen :7686 -http :7687 -peers hub0=localhost:7676,hub2=localhost:7696
//	immunityd -serve -hub hub2 -listen :7696 -http :7697 -peers hub0=localhost:7676,hub1=localhost:7686
//
// Membership is elastic: -peers (or its alias -join) is a seed, not the
// final roster — a joining hub may name a single existing member and
// learns the rest from membership snapshots, and every hub dials
// members it discovers at the address they advertise with -advertise
// (defaults to -listen; set it explicitly when -listen is a wildcard).
// With -failover-after D each hub runs a failure detector: a member
// whose peer link stays down past D is declared dead, its keys fail
// over to their deputies (which already hold replicas of the pending
// confirmation sets), and a returning stale owner's replayed
// arm-broadcasts are fenced by the membership epoch. -leave makes
// shutdown graceful: the hub down-marks itself, hands its owned slice
// off, and drains its outboxes before exiting. The /status document
// shows the membership ring (members, liveness, epoch) and the peer
// links; /status?owner=KEY answers which hub owns — and which hub is
// deputy for — a signature key.
//
// -chaos runs the kill/restart acceptance drive in-process: a
// federation of -hubs hubs storms -sigs signatures from -phones
// devices while the owner of an in-flight slice is killed
// mid-confirmation and restarted (-kills cycles), then asserts
// federation equivalence — every hub converges to the single-hub
// reference's armed set with zero double-arms.
//
// In client mode it runs the fleet immunity workload against such
// daemons across real sockets; -connect takes one address — or a
// comma-separated list, across which the workload's phones attach
// round-robin to exercise a cluster. Without either flag it runs the
// self-contained simulation (in-process hub or cluster, loopback or TCP
// transport).
//
// -storm floods the exchange with per-signature report messages from
// -phones concurrent devices (against the daemons in -connect, or an
// in-process hub/cluster otherwise) and verifies every signature still
// arms cluster-wide — the admission-control acceptance drive. In the
// in-process form the admission counters are printed; against external
// daemons they are scraped from /metrics. With -ramp-warmup/-ramp-flood
// the storm is shaped instead of flat: a paced single-signature warmup
// at -ramp-rate reports/s (the demand signal that lets an AIMD
// controller grow), then a full-batch flood (the overload that makes it
// retreat) — pair it with in-process -admit auto, or aim it at daemons
// serving with -admit auto, to watch capacity adapt end to end.
//
// Usage:
//
//	immunityd -serve [-listen ADDR] [-http ADDR] [-threshold N] [-provenance FILE] [-admit N|auto -admit-wait D] [-slo-target D -slo-interval D] [-hub ID -peers ID=ADDR,... [-advertise ADDR] [-failover-after D] [-leave]]
//	immunityd -connect ADDR[,ADDR...] [-phones N] [-procs N] [-threshold N] [-timeout D]
//	immunityd -storm [-connect ADDR[,ADDR...]] [-phones N] [-sigs N] [-threshold N] [-hubs N] [-admit N|auto -admit-wait D] [-ramp-warmup D -ramp-flood D -ramp-rate N] [-timeout D]
//	immunityd -chaos [-phones N] [-sigs N] [-threshold N] [-hubs N] [-kills N] [-failover-after D] [-timeout D]
//	immunityd [-phones N] [-procs N] [-threshold N] [-timeout D] [-transport loopback|tcp] [-hubs N]
//	immunityd -propagation [-procs N] [-sigs N] [-tcp]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/dimmunix/dimmunix/internal/immunity"
	"github.com/dimmunix/dimmunix/internal/immunity/cluster"
	"github.com/dimmunix/dimmunix/internal/immunity/metrics"
	"github.com/dimmunix/dimmunix/internal/immunity/wire"
	"github.com/dimmunix/dimmunix/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "immunityd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("immunityd", flag.ContinueOnError)
	phones := fs.Int("phones", 4, "simulated phones in the fleet")
	procs := fs.Int("procs", 3, "live application processes per phone")
	threshold := fs.Int("threshold", 2, "distinct devices that must confirm a signature before fleet-wide arming")
	timeout := fs.Duration("timeout", 30*time.Second, "scenario deadline")
	transport := fs.String("transport", "loopback", "simulation transport: loopback or tcp")
	propagation := fs.Bool("propagation", false, "measure only the publish→all-armed latency")
	sigs := fs.Int("sigs", 64, "signatures to publish in -propagation mode")
	tcp := fs.Bool("tcp", false, "with -propagation: measure the cross-device tier over TCP instead of the on-device tier")
	serve := fs.Bool("serve", false, "run as a long-lived exchange daemon")
	listen := fs.String("listen", "127.0.0.1:7676", "with -serve: TCP listen address for the exchange wire protocol")
	httpAddr := fs.String("http", "127.0.0.1:7677", "with -serve: HTTP listen address for /status (empty disables)")
	provenance := fs.String("provenance", "", "with -serve: provenance store file (empty keeps fleet state in memory only)")
	hubID := fs.String("hub", "", "with -serve: this hub's cluster id (required with -peers)")
	peers := fs.String("peers", "", "with -serve: comma-separated id=addr peer hubs to federate with (a seed — the rest of the membership is learned)")
	join := fs.String("join", "", "with -serve: alias of -peers (a joining hub may name a single existing member)")
	advertise := fs.String("advertise", "", "with -serve and federation: the address other members dial this hub at (default: the -listen address)")
	failoverAfter := fs.Duration("failover-after", 0, "with -serve and federation (or -chaos): declare a member dead after its peer link is down this long and fail its keys over to deputies (0 disables)")
	leave := fs.Bool("leave", false, "with -serve and federation: leave the membership gracefully on shutdown (hand off owned keys, drain outboxes)")
	wirePin := fs.Int("wire-pin", 0, "with -serve: pin the negotiated wire version at this ceiling (0 = newest; 2 keeps the hub and its peer links on the JSON codec during a staged rollout)")
	hubs := fs.Int("hubs", 1, "simulation: federate the in-process exchange into this many hubs")
	connect := fs.String("connect", "", "run the fleet workload in client mode against the exchange daemon(s) at this comma-separated address list")
	admit := fs.String("admit", "", "report-path admission: a pool capacity, or 'auto' for AIMD adaptive capacity driven by the latency SLO (empty disables; applies to -serve and the in-process -storm)")
	admitWait := fs.Duration("admit-wait", 5*time.Second, "bounded wait before an over-capacity report is shed (keep well below the 30s wire write timeout)")
	sloTarget := fs.Duration("slo-target", 25*time.Millisecond, "latency SLO: p99 report-handling time (admission wait included) must stay at or under this")
	sloInterval := fs.Duration("slo-interval", time.Second, "SLO evaluation and rate-sampling tick")
	storm := fs.Bool("storm", false, "flood the exchange with per-signature reports from -phones devices and verify arming still completes")
	chaos := fs.Bool("chaos", false, "in-process kill/restart drive: storm a federation while killing and restarting an owner hub, then assert federation equivalence")
	kills := fs.Int("kills", 1, "with -chaos: kill/restart cycles")
	rampWarmup := fs.Duration("ramp-warmup", 0, "with -storm: paced single-signature warmup phase before the flood")
	rampFlood := fs.Duration("ramp-flood", 0, "with -storm: continuous full-batch flood phase after the warmup")
	rampRate := fs.Int("ramp-rate", 20, "with -storm: warmup reports per second per device")
	if err := fs.Parse(args); err != nil {
		return err
	}
	admitCap, admitAuto, err := parseAdmit(*admit)
	if err != nil {
		return err
	}

	if *serve {
		if *chaos {
			return fmt.Errorf("-chaos is an in-process drive, not a serve mode")
		}
		seed := *peers
		if *join != "" {
			if seed != "" {
				seed += ","
			}
			seed += *join
		}
		members, err := parsePeers(seed)
		if err != nil {
			return err
		}
		if len(members) > 0 && *hubID == "" {
			return fmt.Errorf("-peers/-join requires -hub (this hub's cluster id)")
		}
		if len(members) == 0 && (*advertise != "" || *failoverAfter != 0 || *leave) {
			return fmt.Errorf("-advertise/-failover-after/-leave apply to a federated hub (-peers/-join)")
		}
		if *wirePin != 0 && (*wirePin < wire.MinVersion || *wirePin > wire.Version) {
			return fmt.Errorf("-wire-pin %d outside the supported range v%d..v%d", *wirePin, wire.MinVersion, wire.Version)
		}
		if len(members) > 0 && *wirePin != 0 && *wirePin < wire.PeerVersion {
			// A hub pinned below the peer message set would refuse every
			// inbound peer-hello while its own links kept dialing out —
			// half-broken federation with no error; refuse up front.
			return fmt.Errorf("-wire-pin %d is below the peer protocol floor v%d and would break federation (-peers)", *wirePin, wire.PeerVersion)
		}
		adv := *advertise
		if adv == "" {
			adv = *listen
		}
		return runServe(serveConfig{
			listen: *listen, httpAddr: *httpAddr, threshold: *threshold,
			provenance: *provenance, hubID: *hubID, peers: members,
			advertise: adv, failoverAfter: *failoverAfter, leave: *leave,
			wirePin: *wirePin, admit: admitCap, admitAuto: admitAuto,
			admitWait: *admitWait, sloTarget: *sloTarget, sloInterval: *sloInterval,
		})
	}
	if *peers != "" || *join != "" || *hubID != "" {
		return fmt.Errorf("-hub/-peers/-join only apply to -serve (use -hubs N for the simulation)")
	}
	if (*advertise != "" || *leave) && !*serve {
		return fmt.Errorf("-advertise/-leave only apply to -serve")
	}
	if *wirePin != 0 {
		return fmt.Errorf("-wire-pin only applies to -serve (the simulation and client mode always speak the newest version)")
	}

	if *chaos {
		if *connect != "" {
			return fmt.Errorf("-chaos is in-process only (point -storm at external daemons and SIGKILL one instead)")
		}
		cfg := workload.DefaultChaosConfig()
		cfg.Devices = *phones
		cfg.Sigs = *sigs
		cfg.ConfirmThreshold = *threshold
		if *hubs > 1 {
			cfg.Hubs = *hubs
		}
		cfg.Kills = *kills
		if *failoverAfter > 0 {
			cfg.FailoverAfter = *failoverAfter
		}
		cfg.Timeout = *timeout
		res, err := workload.RunChaosStorm(cfg)
		if err != nil {
			return err
		}
		fmt.Print(workload.FormatChaos(res))
		return nil
	}
	if *failoverAfter != 0 {
		return fmt.Errorf("-failover-after only applies to -serve federation and -chaos")
	}
	if *kills != 1 {
		return fmt.Errorf("-kills only applies to -chaos")
	}

	if *storm {
		cfg := workload.StormConfig{
			Devices:          *phones,
			Sigs:             *sigs,
			ConfirmThreshold: *threshold,
			Hubs:             *hubs,
			AdmitCapacity:    admitCap,
			AdmitAuto:        admitAuto,
			AdmitWait:        *admitWait,
			SLOTarget:        *sloTarget,
			SLOInterval:      *sloInterval,
			Timeout:          *timeout,
			Dial:             *connect,
		}
		if *rampWarmup > 0 || *rampFlood > 0 {
			cfg.Ramp = &workload.StormRamp{
				Warmup: *rampWarmup, WarmupRate: *rampRate, Flood: *rampFlood,
			}
		}
		res, err := workload.RunReportStorm(cfg)
		if err != nil {
			return err
		}
		fmt.Print(workload.FormatStorm(res))
		return nil
	}
	if *admit != "" {
		return fmt.Errorf("-admit only applies to -serve and the in-process -storm")
	}
	if *rampWarmup != 0 || *rampFlood != 0 {
		return fmt.Errorf("-ramp-warmup/-ramp-flood only apply to -storm")
	}

	if *propagation {
		var res workload.PropagationResult
		var err error
		if *tcp {
			res, err = workload.PropagationLatencyTCP(*procs, *sigs)
		} else {
			res, err = workload.PropagationLatency(*procs, *sigs)
		}
		if err != nil {
			return err
		}
		fmt.Print(workload.FormatPropagation(res))
		return nil
	}

	cfg := workload.FleetImmunityConfig{
		Phones:           *phones,
		ProcsPerPhone:    *procs,
		ConfirmThreshold: *threshold,
		Timeout:          *timeout,
		Transport:        workload.FleetTransport(*transport),
		Hubs:             *hubs,
		Dial:             *connect,
	}
	res, err := workload.RunFleetImmunity(cfg)
	if err != nil {
		return err
	}
	fmt.Print(workload.FormatFleetImmunity(res))
	return nil
}

// parseAdmit parses the -admit flag: "" disables, "auto" selects the
// AIMD adaptive pool, anything else is a fixed capacity.
func parseAdmit(s string) (capacity int, auto bool, err error) {
	switch s {
	case "":
		return 0, false, nil
	case "auto":
		return 0, true, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, false, fmt.Errorf("-admit %q: want a capacity or 'auto'", s)
	}
	return n, false, nil
}

// parsePeers parses "-peers id=addr,id=addr" into cluster members.
func parsePeers(s string) ([]cluster.Member, error) {
	var out []cluster.Member
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("malformed -peers entry %q (want id=addr)", part)
		}
		out = append(out, cluster.Member{ID: id, Transport: immunity.NewTCPTransport(addr)})
	}
	return out, nil
}

// daemon is a running serve-mode instance.
type daemon struct {
	hub      *immunity.Exchange
	node     *cluster.Node
	srv      *immunity.ExchangeServer
	httpSrv  *http.Server
	httpLn   net.Listener
	rates    *metrics.Rates
	eval     *metrics.Evaluator
	adaptive *metrics.AdaptivePool
}

// Addr returns the exchange's bound TCP address.
func (d *daemon) Addr() string { return d.srv.Addr() }

// HTTPAddr returns the bound /status address, or "".
func (d *daemon) HTTPAddr() string {
	if d.httpLn == nil {
		return ""
	}
	return d.httpLn.Addr().String()
}

// Close tears the daemon down.
func (d *daemon) Close() {
	if d.httpSrv != nil {
		d.httpSrv.Close()
	}
	if d.node != nil {
		d.node.Close()
	}
	d.srv.Close()
	d.hub.Close()
	d.rates.Stop()
}

// serveConfig carries everything serve mode needs. Zero sloTarget and
// sloInterval re-default in startDaemon (25ms / 1s), so tests building
// the struct directly get working objectives.
type serveConfig struct {
	listen, httpAddr string
	threshold        int
	provenance       string
	hubID            string
	peers            []cluster.Member
	advertise        string
	failoverAfter    time.Duration
	leave            bool
	wirePin          int
	admit            int
	admitAuto        bool
	admitWait        time.Duration
	sloTarget        time.Duration
	sloInterval      time.Duration
}

// buildVersion stamps the immunity_build_info gauge; bump it with the
// roadmap's PR sequence.
const buildVersion = "0.8.0"

// startDaemon boots the exchange server, the optional cluster node, and
// the /status + /metrics + /slo endpoints. One registry is shared by
// the hub, the cluster links, the provenance store, and the rate/SLO
// control plane, so /metrics is the whole daemon on one page.
func startDaemon(sc serveConfig) (*daemon, error) {
	if sc.sloTarget <= 0 {
		sc.sloTarget = 25 * time.Millisecond
	}
	if sc.sloInterval <= 0 {
		sc.sloInterval = time.Second
	}
	reg := metrics.NewRegistry()
	reg.Info("immunity_build_info", "Build and protocol metadata (value is always 1).",
		[2]string{"version", buildVersion},
		[2]string{"wire_min", strconv.Itoa(wire.MinVersion)},
		[2]string{"wire_max", strconv.Itoa(wire.Version)})

	// The rate sampler turns the registry's counters into windowed
	// per-second gauges and feeds the SLO evaluator; both tick on
	// sloInterval. Families are resolved lazily, so tracking before the
	// hub registers them is fine, and per-peer series appear as peers do.
	rates := metrics.NewRates(reg, metrics.RatesConfig{Interval: sc.sloInterval})
	for _, name := range []string{
		"immunity_hub_reports_total",
		"immunity_hub_confirmations_total",
		"immunity_hub_armed_total",
		"immunity_hub_echoes_total",
		"immunity_hub_forwards_total",
		"immunity_hub_remote_installs_total",
		"immunity_hub_admission_shed_total",
		"immunity_cluster_peer_forwards_total",
		"immunity_cluster_applied_total",
	} {
		rates.TrackCounter(name)
	}
	rates.TrackHistogram("immunity_hub_report_seconds")
	rates.TrackHistogram("immunity_hub_report_handle_seconds")
	eval := metrics.NewEvaluator(reg, rates, []metrics.SLO{
		{Name: "report-latency", QuantileOf: "immunity_hub_report_seconds",
			Target: sc.sloTarget.Seconds()},
		{Name: "shed-zero", RateOf: "immunity_hub_admission_shed_total", Target: 0},
	})
	uptime := reg.FloatGauge("immunity_hub_uptime_seconds", "Seconds since daemon start.")
	started := time.Now()
	rates.OnTick(func() { uptime.Set(time.Since(started).Seconds()) })

	opts := []immunity.ExchangeOption{immunity.WithMetricsRegistry(reg)}
	if sc.provenance != "" {
		opts = append(opts, immunity.WithProvenanceStore(immunity.NewFileProvenance(sc.provenance,
			immunity.WithCompactionCounters(
				reg.Counter("immunity_provenance_compactions_total", "Provenance log compactions."),
				reg.Counter("immunity_provenance_compact_errors_total", "Failed provenance log compactions.")))))
	}
	if sc.wirePin != 0 {
		// Pin both the hub's inbound negotiation and (below) the
		// outbound peer links: a -wire-pin 2 daemon speaks JSON
		// everywhere however new its binary is.
		opts = append(opts, immunity.WithWireCeiling(sc.wirePin))
	}
	var adaptive *metrics.AdaptivePool
	if sc.admitAuto {
		adaptive = metrics.NewAdaptivePool(reg, "immunity_hub_admission", sc.admitWait,
			metrics.AIMDConfig{SLO: "report-latency"})
		adaptive.Bind(eval)
		opts = append(opts, immunity.WithAdmissionPool(adaptive.Pool))
	} else if sc.admit > 0 {
		opts = append(opts, immunity.WithAdmission(sc.admit, sc.admitWait))
	}
	hub, err := immunity.NewExchange(sc.threshold, opts...)
	if err != nil {
		return nil, err
	}
	var node *cluster.Node
	if len(sc.peers) > 0 {
		// Federate before the listener is up: the ring must be bound
		// before the first device report or inbound peer-hello arrives.
		// Resolve lets the node dial members it did not start with — a
		// joiner admitted from its peer-hello, a member learned from a
		// membership snapshot — at the address they advertise.
		node, err = cluster.New(cluster.Config{
			Self: sc.hubID, SelfAddr: sc.advertise, Hub: hub, Peers: sc.peers,
			Resolve: func(m wire.MemberInfo) immunity.Transport {
				if m.Addr == "" {
					return nil
				}
				return immunity.NewTCPTransport(m.Addr)
			},
			FailoverAfter: sc.failoverAfter,
			WireCeiling:   sc.wirePin, Metrics: reg,
		})
		if err != nil {
			hub.Close()
			return nil, err
		}
	}
	srv, err := immunity.ServeTCP(hub, sc.listen)
	if err != nil {
		if node != nil {
			node.Close()
		}
		hub.Close()
		return nil, err
	}
	d := &daemon{hub: hub, node: node, srv: srv,
		rates: rates, eval: eval, adaptive: adaptive}
	if sc.httpAddr != "" {
		writeJSON := func(w http.ResponseWriter, v any) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(v); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
			if key := r.URL.Query().Get("owner"); key != "" {
				if node == nil {
					http.Error(w, "not a federated hub", http.StatusNotFound)
					return
				}
				owner, deputy := node.OwnerDeputy(key)
				writeJSON(w, ownerPayload{Key: key, Owner: owner, Deputy: deputy})
				return
			}
			p := statusPayload{Status: hub.Status(), Rates: rates.Snapshot()}
			if node != nil {
				p.Links = node.Status()
			}
			writeJSON(w, p)
		})
		mux.HandleFunc("/slo", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, eval.Snapshot())
		})
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := reg.WritePrometheus(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		ln, err := net.Listen("tcp", sc.httpAddr)
		if err != nil {
			d.Close()
			return nil, fmt.Errorf("http listen: %w", err)
		}
		d.httpLn = ln
		d.httpSrv = &http.Server{Handler: mux}
		go func() {
			if err := d.httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "immunityd: http:", err)
			}
		}()
	}
	rates.Start()
	return d, nil
}

// statusPayload is the /status document: the wire status (whose cluster
// section carries the membership ring with liveness and epoch) plus the
// node's peer-link states and the windowed per-second rates of every
// tracked counter series.
type statusPayload struct {
	wire.Status
	Links []cluster.PeerStatus          `json:"links,omitempty"`
	Rates map[string]map[string]float64 `json:"rates,omitempty"`
}

// ownerPayload answers /status?owner=KEY: which hub owns the signature
// key under the current ring, and which hub is its deputy (the failover
// target holding the replicated pending set).
type ownerPayload struct {
	Key    string `json:"key"`
	Owner  string `json:"owner"`
	Deputy string `json:"deputy,omitempty"`
}

// runServe boots the long-running daemon and blocks until
// SIGINT/SIGTERM.
func runServe(sc serveConfig) error {
	d, err := startDaemon(sc)
	if err != nil {
		return err
	}
	defer d.Close()
	maxV := wire.Version
	if sc.wirePin >= wire.MinVersion && sc.wirePin < maxV {
		maxV = sc.wirePin
	}
	fmt.Printf("immunityd: exchange on %s (threshold %d, protocol v%d..%d", d.Addr(), sc.threshold, wire.MinVersion, maxV)
	if sc.provenance != "" {
		fmt.Printf(", provenance %s", sc.provenance)
	}
	switch {
	case sc.admitAuto:
		cfg := d.adaptive.Config()
		fmt.Printf(", admission auto (AIMD %d..%d from %d, max wait %s)",
			cfg.Min, cfg.Max, cfg.Initial, sc.admitWait)
	case sc.admit > 0:
		fmt.Printf(", admission %d/%s", sc.admit, sc.admitWait)
	}
	fmt.Println(")")
	fmt.Printf("immunityd: slo report-latency p99<=%s, shed-zero; evaluated every %s (see /slo)\n",
		sc.sloTarget, sc.sloInterval)
	if d.node != nil {
		fmt.Printf("immunityd: cluster hub %s federating with %d seed peer(s): %s\n",
			sc.hubID, len(sc.peers), strings.Join(d.node.Ring().Members(), " "))
		fmt.Printf("immunityd: membership epoch %d, advertising %s", d.node.Epoch(), sc.advertise)
		if sc.failoverAfter > 0 {
			fmt.Printf(", failover after %s", sc.failoverAfter)
		}
		fmt.Println()
	}
	if st := d.hub.Status(); len(st.Provenance) > 0 {
		fmt.Printf("immunityd: resumed %d signatures from provenance, fleet epoch %d\n", len(st.Provenance), st.Epoch)
	}
	if addr := d.HTTPAddr(); addr != "" {
		fmt.Printf("immunityd: status on http://%s/status, metrics on http://%s/metrics\n", addr, addr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	if sc.leave && d.node != nil {
		fmt.Println("immunityd: leaving the membership (handing off owned keys)")
		d.node.Leave()
	}
	fmt.Println("immunityd: shutting down")
	return nil
}
