package main

import "testing"

func TestProfilerRunSingleApp(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	err := run([]string{"-apps", "Camera", "-duration", "200ms", "-peak", "80ms"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestProfilerUnknownApp(t *testing.T) {
	if err := run([]string{"-apps", "Solitaire"}); err == nil {
		t.Error("unknown app must fail")
	}
}

func TestFormatInt(t *testing.T) {
	tests := []struct {
		in   int
		want string
	}{
		{0, "0"}, {999, "999"}, {1000, "1,000"}, {1952, "1,952"}, {12345, "12,345"},
	}
	for _, tc := range tests {
		if got := formatInt(tc.in); got != tc.want {
			t.Errorf("formatInt(%d) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
