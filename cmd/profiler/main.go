// Command profiler regenerates Table 1 and the platform-level memory and
// power figures (experiments E2, E4, E5): it replays the synchronization
// behaviour of the 8 profiled applications, once vanilla and once under
// Dimmunix, and prints per-app threads, peak syncs/sec, memory with and
// without Dimmunix, the overall platform memory utilization, and the
// battery attribution.
//
// Usage:
//
//	profiler [-duration D] [-peak W] [-apps csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/dimmunix/dimmunix/internal/apps"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "profiler:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("profiler", flag.ContinueOnError)
	duration := fs.Duration("duration", 2*time.Second, "replay duration per app per configuration")
	peak := fs.Duration("peak", 500*time.Millisecond, "peak-throughput window (scaled stand-in for the paper's 30s)")
	appsCSV := fs.String("apps", "", "comma-separated app names (default: all 8)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	profiles := apps.Table1()
	if *appsCSV != "" {
		var selected []apps.Profile
		for _, name := range strings.Split(*appsCSV, ",") {
			p, err := apps.ProfileByName(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			selected = append(selected, p)
		}
		profiles = selected
	}

	fmt.Printf("profiling %d application(s), %v per configuration (%v peak windows)...\n\n",
		len(profiles), *duration, *peak)
	report, err := apps.RunTable1(profiles, *duration, *peak, apps.DefaultReplayConfig())
	if err != nil {
		return err
	}
	fmt.Print(report.Format())

	fmt.Println("\npaper reference (Table 1):")
	for _, row := range report.Rows {
		fmt.Printf("  %-12s paper: %s syncs/sec, %.1f MB dimmunix / %.1f MB vanilla\n",
			row.App, formatInt(rowPaperRate(row)), row.PaperDimmunixMB, row.PaperVanillaMB)
	}
	return nil
}

// rowPaperRate finds the paper's measured rate for the row's app.
func rowPaperRate(row apps.Table1Row) int {
	if p, err := apps.ProfileByName(row.App); err == nil {
		return int(p.SyncsPerSec)
	}
	return 0
}

// formatInt renders with a thousands separator.
func formatInt(n int) string {
	if n < 1000 {
		return fmt.Sprintf("%d", n)
	}
	return fmt.Sprintf("%d,%03d", n/1000, n%1000)
}
