package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/dimmunix/dimmunix/internal/core"
)

// captureStdout runs fn with os.Stdout redirected and returns what it
// printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	runErr := fn()
	os.Stdout = orig
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatalf("run: %v", runErr)
	}
	return string(out)
}

func writeSig(t *testing.T, path string, line int) {
	t.Helper()
	fh := core.NewFileHistory(path)
	sig := &core.Signature{
		Kind: core.DeadlockSig,
		Pairs: []core.SigPair{
			{Outer: core.CallStack{{Class: "a.B", Method: "m", Line: line}}, Inner: core.CallStack{{Class: "a.B", Method: "m", Line: line}}},
			{Outer: core.CallStack{{Class: "c.D", Method: "n", Line: line + 1}}, Inner: core.CallStack{{Class: "c.D", Method: "n", Line: line + 1}}},
		},
	}
	if err := fh.Append(sig); err != nil {
		t.Fatal(err)
	}
}

func TestHistmergeRun(t *testing.T) {
	dir := t.TempDir()
	dst := filepath.Join(dir, "device.hist")
	src1 := filepath.Join(dir, "v1.hist")
	src2 := filepath.Join(dir, "v2.hist")
	writeSig(t, src1, 1)
	writeSig(t, src2, 1) // duplicate of src1
	writeSig(t, src2, 10)

	out := captureStdout(t, func() error { return run([]string{dst, src1, src2}) })
	sigs, err := core.NewFileHistory(dst).Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(sigs) != 2 {
		t.Errorf("merged history has %d signatures, want 2", len(sigs))
	}

	// The summary reports per-source counts and first-contributor
	// provenance.
	for _, want := range []string{
		"2 new signature(s), 2 total",
		"1 loaded,   1 added,   0 duplicate(s)",
		"2 loaded,   1 added,   1 duplicate(s)",
		"provenance (first contributor of each new signature):",
		"<- " + src1,
		"<- " + src2,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestHistmergeUsage(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no args must fail")
	}
	if err := run([]string{"only-dest"}); err == nil {
		t.Error("missing sources must fail")
	}
}
