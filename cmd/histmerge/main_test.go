package main

import (
	"path/filepath"
	"testing"

	"github.com/dimmunix/dimmunix/internal/core"
)

func writeSig(t *testing.T, path string, line int) {
	t.Helper()
	fh := core.NewFileHistory(path)
	sig := &core.Signature{
		Kind: core.DeadlockSig,
		Pairs: []core.SigPair{
			{Outer: core.CallStack{{Class: "a.B", Method: "m", Line: line}}, Inner: core.CallStack{{Class: "a.B", Method: "m", Line: line}}},
			{Outer: core.CallStack{{Class: "c.D", Method: "n", Line: line + 1}}, Inner: core.CallStack{{Class: "c.D", Method: "n", Line: line + 1}}},
		},
	}
	if err := fh.Append(sig); err != nil {
		t.Fatal(err)
	}
}

func TestHistmergeRun(t *testing.T) {
	dir := t.TempDir()
	dst := filepath.Join(dir, "device.hist")
	src1 := filepath.Join(dir, "v1.hist")
	src2 := filepath.Join(dir, "v2.hist")
	writeSig(t, src1, 1)
	writeSig(t, src2, 1) // duplicate of src1
	writeSig(t, src2, 10)

	if err := run([]string{dst, src1, src2}); err != nil {
		t.Fatalf("run: %v", err)
	}
	sigs, err := core.NewFileHistory(dst).Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(sigs) != 2 {
		t.Errorf("merged history has %d signatures, want 2", len(sigs))
	}
}

func TestHistmergeUsage(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no args must fail")
	}
	if err := run([]string{"only-dest"}); err == nil {
		t.Error("missing sources must fail")
	}
}
