// Command histmerge merges Dimmunix deadlock histories: signatures
// collected elsewhere (a vendor's test fleet, another device) are folded
// into a destination history, deduplicated by deadlock identity. The
// paper frames Dimmunix antibodies as shareable — "used by customers to
// defend against deadlocks while waiting for a vendor patch, and by
// software vendors as a safety net" — and merging is how they travel.
//
// Usage:
//
//	histmerge DEST SOURCE [SOURCE...]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/dimmunix/dimmunix/internal/core"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "histmerge:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("histmerge", flag.ContinueOnError)
	lenient := fs.Bool("lenient", false, "skip malformed source blocks instead of failing")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 2 {
		return fmt.Errorf("usage: histmerge [-lenient] DEST SOURCE [SOURCE...]")
	}

	var opts []core.FileHistoryOption
	if *lenient {
		opts = append(opts, core.WithLenientLoad())
	}
	dst := core.NewFileHistory(fs.Arg(0), opts...)
	sources := make([]core.HistoryStore, 0, fs.NArg()-1)
	for _, path := range fs.Args()[1:] {
		sources = append(sources, core.NewFileHistory(path, opts...))
	}

	detail, err := core.MergeStoresDetailed(dst, sources...)
	if err != nil {
		return err
	}
	final, err := dst.Load()
	if err != nil {
		return err
	}
	fmt.Printf("merged %d source(s) into %s: %d new signature(s), %d total\n",
		len(sources), fs.Arg(0), detail.Added, len(final))
	for i, stat := range detail.PerSource {
		fmt.Printf("  %-40s %3d loaded, %3d added, %3d duplicate(s)\n",
			fs.Arg(i+1), stat.Loaded, stat.Added, stat.Duplicates)
	}
	if len(detail.AddedKeys) > 0 {
		fmt.Println("provenance (first contributor of each new signature):")
		for _, key := range detail.AddedKeys {
			fmt.Printf("  %s <- %s\n", key, fs.Arg(detail.Origin[key]+1))
		}
	}
	return nil
}
