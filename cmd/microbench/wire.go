package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"github.com/dimmunix/dimmunix/internal/core"
	"github.com/dimmunix/dimmunix/internal/immunity/wire"
	"github.com/dimmunix/dimmunix/internal/workload"
)

// The -wire mode: the wire-layer microbenchmarks (codec cost, hub
// broadcast fan-out) plus a short propagation run, emitted as
// machine-readable JSON — the repo's perf trajectory baseline. CI runs
// it on every push and uploads BENCH_wire.json as an artifact, so a
// codec or fan-out regression shows up as a diffable number, not a
// feeling.

// wireBenchResult is one benchmark's measured point.
type wireBenchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// broadcastReport compares the v2 per-subscriber marshal fan-out with
// the v3 encode-once path at 64 subscribers (BenchmarkHubBroadcast's
// CLI twin).
type broadcastReport struct {
	Subscribers   int     `json:"subscribers"`
	V2NsPerOp     float64 `json:"v2_json_ns_per_op"`
	V3NsPerOp     float64 `json:"v3_encode_once_ns_per_op"`
	NsSpeedup     float64 `json:"ns_speedup"`
	V2AllocsPerOp int64   `json:"v2_json_allocs_per_op"`
	V3AllocsPerOp int64   `json:"v3_encode_once_allocs_per_op"`
	AllocRatio    float64 `json:"alloc_ratio"`
}

// propReport is one propagation run's latency profile.
type propReport struct {
	Tier  string `json:"tier"`
	Procs int    `json:"procs"`
	Sigs  int    `json:"sigs"`
	AvgNs int64  `json:"avg_ns"`
	P50Ns int64  `json:"p50_ns"`
	P90Ns int64  `json:"p90_ns"`
	P99Ns int64  `json:"p99_ns"`
	MaxNs int64  `json:"max_ns"`
}

// wireReport is the BENCH_wire.json schema.
type wireReport struct {
	GeneratedUnix int64             `json:"generated_unix"`
	GoMaxProcs    int               `json:"gomaxprocs"`
	WireVersion   int               `json:"wire_version"`
	Benchmarks    []wireBenchResult `json:"benchmarks"`
	Broadcast     broadcastReport   `json:"broadcast"`
	Propagation   []propReport      `json:"propagation"`
}

// wireBenchSubscribers matches BenchmarkHubBroadcast.
const wireBenchSubscribers = 64

// wireBenchDelta is the representative broadcast: one armed signature.
func wireBenchDelta() wire.Message {
	a := core.Frame{Class: "com.bench.Wire", Method: "outer", Line: 11}
	b := core.Frame{Class: "com.bench.Wire", Method: "inner", Line: 22}
	sig := &core.Signature{Kind: core.DeadlockSig, Pairs: []core.SigPair{
		{Outer: core.CallStack{a}, Inner: core.CallStack{a, b}},
		{Outer: core.CallStack{b}, Inner: core.CallStack{b, a}},
	}}
	return wire.Message{Type: wire.TypeDelta,
		Delta: &wire.Delta{Epoch: 42, Sigs: []wire.Signature{wire.FromCore(sig)}}}
}

// measure runs one benchmark body and records its point.
func measure(name string, body func(b *testing.B)) wireBenchResult {
	r := testing.Benchmark(body)
	return wireBenchResult{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// runWireBench executes the -wire mode and, when out is non-empty,
// writes BENCH_wire.json there.
func runWireBench(out string, propProcs, propSigs int) error {
	rep := wireReport{
		GeneratedUnix: time.Now().Unix(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		WireVersion:   wire.Version,
	}

	// Codec cost, one message each way.
	encJSON := measure("wire-encode/json", func(b *testing.B) {
		m := wireBenchDelta()
		m.V = wire.MaxJSONVersion
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := wire.Encode(m); err != nil {
				b.Fatal(err)
			}
		}
	})
	encBin := measure("wire-encode/binary", func(b *testing.B) {
		m := wireBenchDelta()
		m.V = wire.BinaryVersion
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := wire.EncodeBinary(m); err != nil {
				b.Fatal(err)
			}
		}
	})
	m := wireBenchDelta()
	m.V = wire.MaxJSONVersion
	jsonBuf, err := wire.Encode(m)
	if err != nil {
		return err
	}
	m.V = wire.BinaryVersion
	binBuf, err := wire.EncodeBinary(m)
	if err != nil {
		return err
	}
	decJSON := measure("wire-decode/json", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := wire.Decode(jsonBuf); err != nil {
				b.Fatal(err)
			}
		}
	})
	decBin := measure("wire-decode/binary", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := wire.DecodeBinary(binBuf); err != nil {
				b.Fatal(err)
			}
		}
	})

	// The fan-out: per-subscriber marshal (the pre-v3 hub) vs one Shared
	// handed to every session (BenchmarkHubBroadcast's two bodies).
	v2 := measure("hub-broadcast/v2-json-per-subscriber", func(b *testing.B) {
		m := wireBenchDelta()
		m.V = wire.MaxJSONVersion
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for s := 0; s < wireBenchSubscribers; s++ {
				if _, err := wire.AppendFrame(nil, m); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	v3 := measure("hub-broadcast/v3-encode-once", func(b *testing.B) {
		dm := wireBenchDelta()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sh := wire.NewShared(dm)
			for s := 0; s < wireBenchSubscribers; s++ {
				if _, err := sh.Frame(wire.BinaryVersion); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	rep.Benchmarks = []wireBenchResult{encJSON, encBin, decJSON, decBin, v2, v3}
	rep.Broadcast = broadcastReport{
		Subscribers:   wireBenchSubscribers,
		V2NsPerOp:     v2.NsPerOp,
		V3NsPerOp:     v3.NsPerOp,
		V2AllocsPerOp: v2.AllocsPerOp,
		V3AllocsPerOp: v3.AllocsPerOp,
	}
	if v3.NsPerOp > 0 {
		rep.Broadcast.NsSpeedup = v2.NsPerOp / v3.NsPerOp
	}
	if v3.AllocsPerOp > 0 {
		rep.Broadcast.AllocRatio = float64(v2.AllocsPerOp) / float64(v3.AllocsPerOp)
	}

	fmt.Printf("wire bench (%d subscribers):\n", wireBenchSubscribers)
	for _, r := range rep.Benchmarks {
		fmt.Printf("  %-38s %12.1f ns/op %8d allocs/op %8d B/op\n", r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
	}
	fmt.Printf("  encode-once speedup: %.1fx ns/op, %.1fx allocs/op\n",
		rep.Broadcast.NsSpeedup, rep.Broadcast.AllocRatio)

	// Propagation latency percentiles, all three tiers, through the live
	// machinery (the v3 path end to end; the auth tier adds TLS and
	// token verification on the same path).
	for _, tier := range []string{"on-device", "cross-device-tcp", "cross-device-tcp-auth"} {
		var res workload.PropagationResult
		var err error
		switch tier {
		case "cross-device-tcp":
			res, err = workload.PropagationLatencyTCP(max(propProcs/4, 1), max(propSigs/2, 1))
		case "cross-device-tcp-auth":
			res, err = workload.PropagationLatencyTCPAuth(max(propProcs/4, 1), max(propSigs/2, 1))
		default:
			res, err = workload.PropagationLatency(propProcs, propSigs)
		}
		if err != nil {
			return err
		}
		rep.Propagation = append(rep.Propagation, propReport{
			Tier: tier, Procs: res.Procs, Sigs: res.Sigs,
			AvgNs: res.Avg.Nanoseconds(), P50Ns: res.P50.Nanoseconds(),
			P90Ns: res.P90.Nanoseconds(), P99Ns: res.P99.Nanoseconds(),
			MaxNs: res.Max.Nanoseconds(),
		})
		fmt.Print("  ", workload.FormatPropagation(res))
	}

	if out == "" {
		return nil
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}
