// Command microbench regenerates the §5 performance microbenchmark
// (experiment E3): N threads executing synchronized blocks on random lock
// objects with busy-wait work, against a synthetic history of 64–256
// signatures, measured vanilla vs Dimmunix.
//
// Usage:
//
//	microbench [-threads csv] [-sigs csv] [-duration D] [-work N | -calibrate]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/dimmunix/dimmunix/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "microbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("microbench", flag.ContinueOnError)
	threadsCSV := fs.String("threads", "2,8,32,128,512", "thread counts to sweep")
	sigsCSV := fs.String("sigs", "64,128,256", "synthetic history sizes")
	duration := fs.Duration("duration", time.Second, "measurement duration per cell")
	work := fs.Int("work", 0, "busy-wait iterations per op (0 = calibrate to the paper's ~1,747 syncs/sec)")
	seed := fs.Int64("seed", 42, "workload seed")
	curve := fs.Bool("curve", false, "measure the overhead-vs-work curve instead of the thread sweep")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *curve {
		calibrated := workload.CalibrateWork(workload.PaperTargetSyncsPerSec, 2)
		fmt.Printf("overhead vs per-op work (2 threads, 128 signatures; calibrated operating point = %d iters/op):\n\n", calibrated)
		points, err := workload.OverheadCurve(workload.DefaultCurveWorkSizes(calibrated), 2, 128, *duration, *seed)
		if err != nil {
			return err
		}
		fmt.Print(workload.FormatCurve(points))
		fmt.Println("\nwork=0 is the pure interception cost (upper bound); the paper's 4-5%")
		fmt.Println("regime is the work size where computation ≈ 20-25× the interception cost.")
		return nil
	}

	threads, err := parseInts(*threadsCSV)
	if err != nil {
		return fmt.Errorf("bad -threads: %w", err)
	}
	sigs, err := parseInts(*sigsCSV)
	if err != nil {
		return fmt.Errorf("bad -sigs: %w", err)
	}

	cfg := workload.SweepConfig{
		ThreadCounts:    threads,
		SignatureCounts: sigs,
		Duration:        *duration,
		WorkIters:       *work,
		Seed:            *seed,
	}
	if *work == 0 {
		calibrated := workload.CalibrateWork(workload.PaperTargetSyncsPerSec, threads[0])
		fmt.Printf("calibrated busy work: %d iterations/op (targeting ~%d syncs/sec vanilla, the paper's operating point)\n\n",
			calibrated, int(workload.PaperTargetSyncsPerSec))
		cfg.WorkIters = calibrated
	}

	points, err := workload.RunSweep(cfg)
	if err != nil {
		return err
	}
	fmt.Print(workload.FormatSweep(points))
	fmt.Println("\npaper reference: vanilla 1738-1756 syncs/sec, dimmunix 1657-1681 syncs/sec (4-5% overhead)")
	return nil
}

// parseInts parses a comma-separated integer list.
func parseInts(csv string) ([]int, error) {
	parts := strings.Split(csv, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		if n < 1 {
			return nil, fmt.Errorf("non-positive count %d", n)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
