// Command microbench regenerates the §5 performance microbenchmark
// (experiment E3): N threads executing synchronized blocks on random lock
// objects with busy-wait work, against a synthetic history of 64–256
// signatures, measured vanilla vs Dimmunix.
//
// Usage:
//
//	microbench [-threads csv] [-sigs csv] [-duration D] [-work N | -calibrate]
//	microbench -engines [-threads csv] [-duration D]   # serial vs sharded engine
//	microbench -fleet N [-duration D] [-engine serial|sharded]  # fleet stress
//	microbench -propagation [-procs N] [-propsigs N] [-tcp]  # time-to-immunity across live processes (or phones, over TCP)
//	microbench -wire [-out BENCH_wire.json]  # wire codec + hub fan-out benchmarks, machine-readable baseline
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/dimmunix/dimmunix/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "microbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("microbench", flag.ContinueOnError)
	threadsCSV := fs.String("threads", "2,8,32,128,512", "thread counts to sweep")
	sigsCSV := fs.String("sigs", "64,128,256", "synthetic history sizes")
	duration := fs.Duration("duration", time.Second, "measurement duration per cell")
	work := fs.Int("work", 0, "busy-wait iterations per op (0 = calibrate to the paper's ~1,747 syncs/sec)")
	seed := fs.Int64("seed", 42, "workload seed")
	curve := fs.Bool("curve", false, "measure the overhead-vs-work curve instead of the thread sweep")
	engine := fs.String("engine", "sharded", "core engine: sharded (low-contention fast path) or serial (the paper's global lock)")
	engines := fs.Bool("engines", false, "compare the serial and sharded engines head to head (full VM path)")
	uncontended := fs.Bool("uncontended", false, "compare the engines on core-level uncontended monitorenters (per-goroutine private locks)")
	fleet := fs.Int("fleet", 0, "run the fleet stress workload with this many processes instead of the thread sweep")
	propagation := fs.Bool("propagation", false, "measure the immunity service's publish→all-armed latency across live processes")
	propProcs := fs.Int("procs", 8, "live processes for -propagation")
	propSigs := fs.Int("propsigs", 64, "signatures to publish for -propagation")
	propTCP := fs.Bool("tcp", false, "with -propagation: cross-device latency through the TCP exchange (publish on one phone → armed on another)")
	wireBench := fs.Bool("wire", false, "run the wire codec + hub broadcast fan-out microbenchmarks and a short propagation pass")
	benchOut := fs.String("out", "BENCH_wire.json", "with -wire: write machine-readable results here (empty disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *wireBench {
		return runWireBench(*benchOut, *propProcs, *propSigs)
	}
	serial, err := parseEngine(*engine)
	if err != nil {
		return err
	}

	if *propagation {
		var res workload.PropagationResult
		if *propTCP {
			res, err = workload.PropagationLatencyTCP(*propProcs, *propSigs)
		} else {
			res, err = workload.PropagationLatency(*propProcs, *propSigs)
		}
		if err != nil {
			return err
		}
		fmt.Print(workload.FormatPropagation(res))
		return nil
	}

	if *fleet > 0 {
		cfg := workload.DefaultFleetConfig()
		cfg.Processes = *fleet
		cfg.Duration = *duration
		cfg.Serial = serial
		cfg.Seed = *seed
		res, err := workload.RunFleet(cfg)
		if err != nil {
			return err
		}
		fmt.Print(workload.FormatFleet(res))
		return nil
	}

	if *engines {
		return compareEngines(*threadsCSV, *duration, *seed)
	}
	if *uncontended {
		return compareUncontended(*threadsCSV, *duration)
	}

	if *curve {
		calibrated := workload.CalibrateWork(workload.PaperTargetSyncsPerSec, 2)
		fmt.Printf("overhead vs per-op work (2 threads, 128 signatures; calibrated operating point = %d iters/op):\n\n", calibrated)
		points, err := workload.OverheadCurve(workload.DefaultCurveWorkSizes(calibrated), 2, 128, *duration, *seed)
		if err != nil {
			return err
		}
		fmt.Print(workload.FormatCurve(points))
		fmt.Println("\nwork=0 is the pure interception cost (upper bound); the paper's 4-5%")
		fmt.Println("regime is the work size where computation ≈ 20-25× the interception cost.")
		return nil
	}

	threads, err := parseInts(*threadsCSV)
	if err != nil {
		return fmt.Errorf("bad -threads: %w", err)
	}
	sigs, err := parseInts(*sigsCSV)
	if err != nil {
		return fmt.Errorf("bad -sigs: %w", err)
	}

	cfg := workload.SweepConfig{
		ThreadCounts:    threads,
		SignatureCounts: sigs,
		Duration:        *duration,
		WorkIters:       *work,
		Seed:            *seed,
		Serial:          serial,
	}
	if *work == 0 {
		calibrated := workload.CalibrateWork(workload.PaperTargetSyncsPerSec, threads[0])
		fmt.Printf("calibrated busy work: %d iterations/op (targeting ~%d syncs/sec vanilla, the paper's operating point)\n\n",
			calibrated, int(workload.PaperTargetSyncsPerSec))
		cfg.WorkIters = calibrated
	}

	points, err := workload.RunSweep(cfg)
	if err != nil {
		return err
	}
	fmt.Print(workload.FormatSweep(points))
	fmt.Println("\npaper reference: vanilla 1738-1756 syncs/sec, dimmunix 1657-1681 syncs/sec (4-5% overhead)")
	return nil
}

// parseEngine maps the -engine flag to the core's Serial switch.
func parseEngine(name string) (serial bool, err error) {
	switch name {
	case "serial":
		return true, nil
	case "sharded":
		return false, nil
	default:
		return false, fmt.Errorf("bad -engine %q: want serial or sharded", name)
	}
}

// compareEngines runs the unpaced (work-free) microbenchmark on both
// engines per thread count — the pure interception throughput, where the
// sharded fast path's win shows.
func compareEngines(threadsCSV string, duration time.Duration, seed int64) error {
	threads, err := parseInts(threadsCSV)
	if err != nil {
		return fmt.Errorf("bad -threads: %w", err)
	}
	fmt.Println("engine comparison (no busy work, 0 signatures: pure interception):")
	fmt.Printf("%8s %14s %14s %9s\n", "threads", "serial", "sharded", "speedup")
	for _, n := range threads {
		var rates [2]float64
		for i, serial := range []bool{true, false} {
			cfg := workload.DefaultMicroConfig(n)
			cfg.Duration = duration
			cfg.Signatures = 0
			cfg.InsideWork = 0
			cfg.OutsideWork = 0
			cfg.Serial = serial
			cfg.Seed = seed
			res, err := workload.Run(cfg)
			if err != nil {
				return err
			}
			rates[i] = res.SyncsPerSec
		}
		speedup := 0.0
		if rates[0] > 0 {
			speedup = rates[1] / rates[0]
		}
		fmt.Printf("%8d %14.0f %14.0f %8.2fx\n", n, rates[0], rates[1], speedup)
	}
	return nil
}

// compareUncontended measures the raw Request/Acquired/Release cycle for
// uncontended monitorenters — per-goroutine private lock and position,
// named by no signature — on both engines. This is the interception cost
// the sharded fast path attacks; the VM's stack capture and monitor costs
// are excluded.
func compareUncontended(threadsCSV string, duration time.Duration) error {
	threads, err := parseInts(threadsCSV)
	if err != nil {
		return fmt.Errorf("bad -threads: %w", err)
	}
	fmt.Println("core-level uncontended monitorenter (private lock+position per goroutine):")
	fmt.Printf("%10s %14s %14s %9s\n", "goroutines", "serial", "sharded", "speedup")
	for _, n := range threads {
		var rates [2]float64
		for i, serial := range []bool{true, false} {
			rate, err := workload.UncontendedEnterRate(n, duration, serial)
			if err != nil {
				return err
			}
			rates[i] = rate
		}
		speedup := 0.0
		if rates[0] > 0 {
			speedup = rates[1] / rates[0]
		}
		fmt.Printf("%10d %14.0f %14.0f %8.2fx\n", n, rates[0], rates[1], speedup)
	}
	return nil
}

// parseInts parses a comma-separated integer list.
func parseInts(csv string) ([]int, error) {
	parts := strings.Split(csv, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		if n < 1 {
			return nil, fmt.Errorf("non-positive count %d", n)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
