package main

import "testing"

func TestParseInts(t *testing.T) {
	tests := []struct {
		in   string
		want []int
		ok   bool
	}{
		{"2,8,32", []int{2, 8, 32}, true},
		{" 4 , 16 ", []int{4, 16}, true},
		{"1", []int{1}, true},
		{"", nil, false},
		{"a,b", nil, false},
		{"0", nil, false},
		{"-3", nil, false},
	}
	for _, tc := range tests {
		got, err := parseInts(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("parseInts(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if !tc.ok {
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("parseInts(%q) = %v, want %v", tc.in, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("parseInts(%q)[%d] = %d, want %d", tc.in, i, got[i], tc.want[i])
			}
		}
	}
}

func TestMicrobenchRunSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	err := run([]string{"-threads", "2", "-sigs", "64", "-duration", "80ms", "-work", "300"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestMicrobenchBadFlags(t *testing.T) {
	if err := run([]string{"-threads", "zero"}); err == nil {
		t.Error("bad -threads must fail")
	}
	if err := run([]string{"-sigs", ""}); err == nil {
		t.Error("empty -sigs must fail")
	}
}
