// Command syncstats prints the §3.2 synchronization-site census
// (experiment E6): Android 2.2 essential applications contain 1,050
// synchronized blocks/methods and only 15 explicit lock/unlock call
// sites — the measurement behind Android Dimmunix handling only
// synchronized blocks/methods.
//
// Usage:
//
//	syncstats [-by-class]
package main

import (
	"flag"
	"fmt"
	"os"

	dimmunix "github.com/dimmunix/dimmunix"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "syncstats:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("syncstats", flag.ContinueOnError)
	byClass := fs.Bool("by-class", false, "print the per-class breakdown")
	if err := fs.Parse(args); err != nil {
		return err
	}

	census, err := dimmunix.FrameworkCensus()
	if err != nil {
		return err
	}
	counts := census.Counts()
	fmt.Println("synchronization sites in the simulated Android 2.2 platform:")
	fmt.Printf("  synchronized blocks:   %5d\n", counts.SyncBlocks)
	fmt.Printf("  synchronized methods:  %5d\n", counts.SyncMethods)
	fmt.Printf("  total synchronized:    %5d   (paper: %d)\n", counts.TotalSyncSites, dimmunix.TargetSyncSites)
	fmt.Printf("  explicit lock/unlock:  %5d   (paper: %d)\n", counts.ExplicitLocks, dimmunix.TargetExplicitSites)
	fmt.Printf("  classes:               %5d\n", counts.ClassesDeclared)
	fmt.Printf("\nsynchronized:explicit ratio %d:1 — handling only synchronized\n", counts.TotalSyncSites/counts.ExplicitLocks)
	fmt.Println("blocks/methods is not a major shortcoming (§3.2)")

	if *byClass {
		fmt.Println("\nper-class breakdown:")
		for _, cs := range census.ByClass() {
			fmt.Printf("  %-60s %4d synchronized %3d explicit\n", cs.Class, cs.Synchronized, cs.Explicit)
		}
	}
	return nil
}
