package main

import "testing"

func TestSyncstatsRun(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run([]string{"-by-class"}); err != nil {
		t.Fatalf("run -by-class: %v", err)
	}
}
