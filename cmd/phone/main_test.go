package main

import (
	"path/filepath"
	"testing"
)

func TestPhoneRunBadScenario(t *testing.T) {
	if err := run([]string{"-scenario", "bogus"}); err == nil {
		t.Error("unknown scenario must fail")
	}
}

func TestPhoneRunOneCycle(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	hist := filepath.Join(t.TempDir(), "phone.hist")
	// One freeze+reboot cycle plus one immunized run, persisted history.
	if err := run([]string{"-runs", "2", "-history", hist}); err != nil {
		t.Fatalf("run: %v", err)
	}
}
