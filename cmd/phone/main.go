// Command phone runs the paper's end-to-end scenario (experiment E1) on
// the simulated device: boot the platform, force the Android issue-7986
// race between NotificationManagerService and StatusBarService, watch the
// interface freeze exactly once, reboot, and observe Dimmunix avoid the
// deadlock deterministically — with no user intervention.
//
// Usage:
//
//	phone [-vanilla] [-history FILE] [-runs N] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	dimmunix "github.com/dimmunix/dimmunix"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "phone:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("phone", flag.ContinueOnError)
	vanilla := fs.Bool("vanilla", false, "run the vanilla platform (no immunity) as the baseline")
	history := fs.String("history", "", "persistent history file (default: in-memory)")
	runs := fs.Int("runs", 3, "how many times to trigger the race (reboot after each freeze)")
	verbose := fs.Bool("v", false, "stream Dimmunix events")
	anr := fs.Bool("anr", false, "print the thread-dump (traces.txt) report on each freeze")
	scenario := fs.String("scenario", "notification", "deadlock to trigger: notification (issue 7986) or window (AMS/WMS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var trigger func(*dimmunix.Phone) (dimmunix.ScenarioOutcome, error)
	switch *scenario {
	case "notification":
		trigger = func(ph *dimmunix.Phone) (dimmunix.ScenarioOutcome, error) {
			return ph.RunNotificationScenario(time.Minute)
		}
	case "window":
		trigger = func(ph *dimmunix.Phone) (dimmunix.ScenarioOutcome, error) {
			return ph.RunWindowScenario(time.Minute)
		}
	default:
		return fmt.Errorf("unknown -scenario %q (want notification or window)", *scenario)
	}

	cfg := dimmunix.DefaultPhoneConfig()
	cfg.Dimmunix = !*vanilla
	cfg.WatchdogInterval = 50 * time.Millisecond
	cfg.WatchdogThreshold = 2 * time.Second
	cfg.GateTimeout = 500 * time.Millisecond
	if *history != "" {
		cfg.History = dimmunix.NewFileHistory(*history)
	}

	ph := dimmunix.NewPhone(cfg)
	if err := ph.Boot(); err != nil {
		return err
	}
	defer ph.Shutdown()
	build := "Android Dimmunix"
	if *vanilla {
		build = "vanilla Android"
	}
	fmt.Printf("booted %s (watchdog %v, gate %v)\n", build, cfg.WatchdogInterval, cfg.GateTimeout)

	if *verbose && !*vanilla {
		go streamEvents(ph)
	}

	for run := 1; run <= *runs; run++ {
		fmt.Printf("\n--- run %d: triggering the %s race ---\n", run, *scenario)
		out, err := trigger(ph)
		if err != nil {
			return fmt.Errorf("run %d: %w", run, err)
		}
		switch out {
		case dimmunix.OutcomeFroze:
			fmt.Println("PHONE FROZE: the watchdog reports the UI looper is stuck")
			if !*vanilla {
				sys := ph.System()
				for _, info := range sys.Proc.Dimmunix().History() {
					fmt.Printf("  recorded signature: %s\n", info)
				}
			}
			if *anr {
				if report := ph.LastANR(); report != nil {
					fmt.Println()
					fmt.Print(report)
				}
			}
			fmt.Println("rebooting...")
			if err := ph.Reboot(); err != nil {
				return err
			}
			if *verbose && !*vanilla {
				go streamEvents(ph)
			}
		case dimmunix.OutcomeCompleted:
			fmt.Println("scenario completed: both racing operations finished — no freeze")
			if !*vanilla {
				st := ph.System().Proc.Dimmunix().Stats()
				fmt.Printf("  avoidance engaged: %d yield(s), %d resume(s)\n", st.Yields, st.Resumes)
			}
		}
	}

	fmt.Printf("\nboots: %d\n", ph.Boots())
	if !*vanilla {
		fmt.Println("verdict: the phone hung once; the deadlock has not reoccurred (deadlock immunity)")
	} else {
		fmt.Println("verdict: the vanilla phone freezes every time the race fires")
	}
	return nil
}

// streamEvents prints core events of the current system server until its
// process dies.
func streamEvents(ph *dimmunix.Phone) {
	sys := ph.System()
	if sys == nil || sys.Proc.Dimmunix() == nil {
		return
	}
	for ev := range sys.Proc.Dimmunix().Events() {
		fmt.Printf("  [dimmunix] %s\n", ev)
	}
}
