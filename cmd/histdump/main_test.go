package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/dimmunix/dimmunix/internal/core"
)

func writeHistory(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "h.hist")
	fh := core.NewFileHistory(path)
	sig := &core.Signature{
		Kind: core.DeadlockSig,
		Pairs: []core.SigPair{
			{Outer: core.CallStack{{Class: "a.B", Method: "m", Line: 1}}, Inner: core.CallStack{{Class: "a.B", Method: "m", Line: 1}}},
			{Outer: core.CallStack{{Class: "c.D", Method: "n", Line: 2}}, Inner: core.CallStack{{Class: "c.D", Method: "n", Line: 2}}},
		},
	}
	if err := fh.Append(sig); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestHistdumpRun(t *testing.T) {
	path := writeHistory(t)
	if err := run([]string{path}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestHistdumpMissingArgs(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("run with no file must fail")
	}
	if err := run([]string{"a", "b"}); err == nil {
		t.Error("run with two files must fail")
	}
}

func TestHistdumpMissingFile(t *testing.T) {
	if err := run([]string{filepath.Join(t.TempDir(), "nope.hist")}); err == nil {
		t.Error("missing file must fail")
	}
}

func TestHistdumpCorruptStrictVsLenient(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.hist")
	content := "#dimmunix-history v1\nsig deadlock\npair outer=a.B.m:1 inner=a.B.m:1\npair outer=c.D.n:2 inner=c.D.n:2\nend\nsig deadlock\ntorn"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{path}); err == nil {
		t.Error("strict dump of torn file must fail")
	}
	if err := run([]string{"-lenient", path}); err != nil {
		t.Errorf("lenient dump: %v", err)
	}
}
