// Command histdump inspects a persistent Dimmunix deadlock-history file:
// it validates the format and prints each signature's kind, outer
// positions (what avoidance matches on) and inner call stacks (the
// diagnostic context recorded at the moment of the deadlock).
//
// Usage:
//
//	histdump [-lenient] FILE
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/dimmunix/dimmunix/internal/core"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "histdump:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("histdump", flag.ContinueOnError)
	lenient := fs.Bool("lenient", false, "skip malformed blocks instead of failing")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: histdump [-lenient] FILE")
	}
	path := fs.Arg(0)

	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sigs, skipped, err := core.DecodeHistory(f, *lenient)
	if err != nil {
		return err
	}

	fmt.Printf("%s: %d signature(s)", path, len(sigs))
	if skipped > 0 {
		fmt.Printf(", %d malformed block(s) skipped", skipped)
	}
	fmt.Println()
	for i, sig := range sigs {
		fmt.Printf("\nsignature %d: %s, %d thread(s)\n", i, sig.Kind, len(sig.Pairs))
		for j, pair := range sig.Pairs {
			fmt.Printf("  thread %d:\n", j)
			fmt.Printf("    outer (lock acquired at): %s\n", pair.Outer.Key())
			fmt.Printf("    inner (blocked at):       %s\n", pair.Inner.Key())
		}
	}
	return nil
}
