// Benchmark harness regenerating every table and figure of the paper's
// evaluation (§5), plus ablations of the design choices called out in
// DESIGN.md. Each experiment has one Benchmark* entry:
//
//	E1  BenchmarkE1DeadlockImmunity    — §5 ¶2: avoided reoccurrence of the
//	                                     NotificationManagerService /
//	                                     StatusBarService deadlock
//	E2  BenchmarkTable1Throughput      — Table 1: per-app syncs/sec
//	E3  BenchmarkMicroSyncThroughput   — §5 ¶4: 2–512 threads, 64–256 sigs
//	E4  BenchmarkPowerAttribution      — §5 ¶5: battery share
//	E5  BenchmarkTable1Memory          — §5 ¶6 / Table 1 memory columns
//	E6  BenchmarkSyncSiteCensus        — §3.2 static census
//	A1  BenchmarkAblationOuterDepth    — depth-1 vs deeper outer stacks
//	A2  BenchmarkAblationQueueReuse    — two-queue entry recycling
//	A3  BenchmarkAblationFattening     — thin fast path vs always-fat
//	A4  BenchmarkAblationGlobalLock    — cost of the core's three calls
//	A5  BenchmarkAblationStaticIDs     — stack capture vs compiler ids
//	    BenchmarkAvoidanceMatching     — signature-count scaling
//
// Scenario benchmarks (E1/E2/E4/E5) time one full scenario per iteration
// and attach domain metrics via b.ReportMetric; operation benchmarks
// (E3 per-op, ablations) are conventional per-op loops.
package dimmunix_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	dimmunix "github.com/dimmunix/dimmunix"
	"github.com/dimmunix/dimmunix/internal/android"
	"github.com/dimmunix/dimmunix/internal/apps"
	"github.com/dimmunix/dimmunix/internal/core"
	"github.com/dimmunix/dimmunix/internal/metrics"
	"github.com/dimmunix/dimmunix/internal/vm"
	"github.com/dimmunix/dimmunix/internal/workload"
)

// --- E1: deadlock immunity end to end -----------------------------------

func BenchmarkE1DeadlockImmunity(b *testing.B) {
	cfg := dimmunix.DefaultPhoneConfig()
	cfg.History = dimmunix.NewMemHistory()
	cfg.WatchdogInterval = 20 * time.Millisecond
	cfg.WatchdogThreshold = 700 * time.Millisecond
	cfg.GateTimeout = 50 * time.Millisecond
	ph := dimmunix.NewPhone(cfg)
	if err := ph.Boot(); err != nil {
		b.Fatal(err)
	}
	defer ph.Shutdown()
	// Immunize once (run 1: freeze + detection + reboot), outside the
	// timed region.
	if out, err := ph.RunNotificationScenario(time.Minute); err != nil || out != dimmunix.OutcomeFroze {
		b.Fatalf("immunization run: out=%v err=%v", out, err)
	}
	if err := ph.Reboot(); err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := ph.RunNotificationScenario(time.Minute)
		if err != nil || out != dimmunix.OutcomeCompleted {
			b.Fatalf("iteration %d: out=%v err=%v", i, out, err)
		}
	}
	b.StopTimer()
	st := ph.System().Proc.Dimmunix().Stats()
	b.ReportMetric(float64(st.Yields)/float64(b.N), "yields/op")
	if st.DeadlocksDetected != 0 {
		b.Fatalf("deadlock reoccurred under immunity: %+v", st)
	}
}

// --- E2: Table 1 throughput ----------------------------------------------

// benchReplayDuration keeps scenario iterations affordable under the
// default -benchtime.
const benchReplayDuration = 250 * time.Millisecond

func BenchmarkTable1Throughput(b *testing.B) {
	for _, profile := range apps.Table1() {
		profile := profile
		for _, mode := range []struct {
			name string
			dim  bool
		}{{"vanilla", false}, {"dimmunix", true}} {
			b.Run(fmt.Sprintf("%s/%s", profile.Name, mode.name), func(b *testing.B) {
				var last apps.Result
				for i := 0; i < b.N; i++ {
					res, err := apps.RunProfile(profile, mode.dim, benchReplayDuration, 100*time.Millisecond, apps.DefaultReplayConfig())
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				b.ReportMetric(last.PeakSyncsPerSec, "syncs/sec")
				b.ReportMetric(profile.SyncsPerSec, "paper-syncs/sec")
			})
		}
	}
}

// --- E3: the §5 microbenchmark -------------------------------------------

func BenchmarkMicroSyncThroughput(b *testing.B) {
	for _, threads := range []int{2, 8, 32, 128, 512} {
		for _, mode := range []struct {
			name string
			dim  bool
		}{{"vanilla", false}, {"dimmunix", true}} {
			b.Run(fmt.Sprintf("threads=%d/%s", threads, mode.name), func(b *testing.B) {
				cfg := workload.DefaultMicroConfig(threads)
				cfg.Duration = 200 * time.Millisecond
				cfg.Dimmunix = mode.dim
				var last workload.Result
				for i := 0; i < b.N; i++ {
					res, err := workload.Run(cfg)
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				b.ReportMetric(last.SyncsPerSec, "syncs/sec")
			})
		}
	}
}

// BenchmarkMicroOperatingPoint measures the per-op cost at the paper's
// calibrated operating point (~1,747 vanilla syncs/sec on the reference
// device) with the paper's synthetic history sizes.
func BenchmarkMicroOperatingPoint(b *testing.B) {
	work := workload.CalibrateWork(workload.PaperTargetSyncsPerSec, 2)
	for _, sigs := range []int{64, 128, 256} {
		for _, mode := range []struct {
			name string
			dim  bool
		}{{"vanilla", false}, {"dimmunix", true}} {
			b.Run(fmt.Sprintf("sigs=%d/%s", sigs, mode.name), func(b *testing.B) {
				cfg := workload.DefaultMicroConfig(2)
				cfg.Duration = 300 * time.Millisecond
				cfg.Signatures = sigs
				cfg.Dimmunix = mode.dim
				cfg.InsideWork = work / 4
				cfg.OutsideWork = work - work/4
				var last workload.Result
				for i := 0; i < b.N; i++ {
					res, err := workload.Run(cfg)
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				b.ReportMetric(last.SyncsPerSec, "syncs/sec")
			})
		}
	}
}

// --- E4: power attribution -----------------------------------------------

func BenchmarkPowerAttribution(b *testing.B) {
	profile := apps.Table1()[0] // Email: the most sync-intensive app
	van, err := apps.RunProfile(profile, false, benchReplayDuration, 100*time.Millisecond, apps.DefaultReplayConfig())
	if err != nil {
		b.Fatal(err)
	}
	dim, err := apps.RunProfile(profile, true, benchReplayDuration, 100*time.Millisecond, apps.DefaultReplayConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var vrep, drep metrics.PowerReport
	for i := 0; i < b.N; i++ {
		vrep, drep = apps.PowerComparison(van.BusyTime, dim.BusyTime, benchReplayDuration, metrics.DefaultPowerModel())
	}
	b.ReportMetric(vrep.AppsAndOSPct, "vanilla-apps+os-%")
	b.ReportMetric(drep.AppsAndOSPct, "dimmunix-apps+os-%")
}

// --- E5: memory overhead --------------------------------------------------

func BenchmarkTable1Memory(b *testing.B) {
	for _, profile := range apps.Table1()[:3] { // Email, Browser, Maps
		profile := profile
		b.Run(profile.Name, func(b *testing.B) {
			var mem metrics.AppMemory
			for i := 0; i < b.N; i++ {
				van, err := apps.RunProfile(profile, false, benchReplayDuration, 100*time.Millisecond, apps.DefaultReplayConfig())
				if err != nil {
					b.Fatal(err)
				}
				dim, err := apps.RunProfile(profile, true, benchReplayDuration, 100*time.Millisecond, apps.DefaultReplayConfig())
				if err != nil {
					b.Fatal(err)
				}
				delta := dim.VMSyncBytes - van.VMSyncBytes
				if delta < 0 {
					delta = 0
				}
				mem = metrics.AppMemory{
					Name:      profile.Name,
					VanillaMB: profile.VanillaMB,
					CoreBytes: dim.CoreBytes,
					VMBytes:   delta,
				}
			}
			b.ReportMetric(mem.OverheadPct(), "mem-overhead-%")
			b.ReportMetric((profile.DimmunixMB-profile.VanillaMB)/profile.VanillaMB*100, "paper-overhead-%")
		})
	}
}

// --- E6: sync-site census --------------------------------------------------

func BenchmarkSyncSiteCensus(b *testing.B) {
	var counts vm.CensusCounts
	for i := 0; i < b.N; i++ {
		census, err := dimmunix.FrameworkCensus()
		if err != nil {
			b.Fatal(err)
		}
		counts = census.Counts()
	}
	b.ReportMetric(float64(counts.TotalSyncSites), "sync-sites")
	b.ReportMetric(float64(counts.ExplicitLocks), "explicit-sites")
}

// --- per-op helpers ---------------------------------------------------------

// benchProc builds a process (with or without a core) and a worker thread
// executing fn in a bench-controlled loop.
func benchSyncOp(b *testing.B, dim bool, depth int, frames int, op func(t *vm.Thread, o *vm.Object, site *vm.Site)) {
	var c *core.Core
	if dim {
		opts := []core.Option{}
		if depth > 0 {
			opts = append(opts, core.WithOuterDepth(depth))
		}
		var err error
		c, err = core.New(opts...)
		if err != nil {
			b.Fatal(err)
		}
	}
	proc := vm.NewProcess("bench", c)
	defer proc.Kill()
	o := proc.NewObject("lock")
	site := vm.NewSite("com.bench.C", "m", 1)
	done := make(chan struct{})
	_, err := proc.Start("w", func(t *vm.Thread) {
		defer close(done)
		for i := 0; i < frames; i++ {
			t.PushFrame(core.Frame{Class: fmt.Sprintf("com.bench.F%d", i), Method: "call", Line: i})
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			op(t, o, site)
		}
		b.StopTimer()
	})
	if err != nil {
		b.Fatal(err)
	}
	<-done
}

// --- A1: outer call-stack depth --------------------------------------------

func BenchmarkAblationOuterDepth(b *testing.B) {
	for _, depth := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			benchSyncOp(b, true, depth, 6, func(t *vm.Thread, o *vm.Object, _ *vm.Site) {
				o.Synchronized(t, func() {})
			})
		})
	}
}

// --- A2: queue entry reuse ---------------------------------------------------

func BenchmarkAblationQueueReuse(b *testing.B) {
	for _, reuse := range []bool{true, false} {
		b.Run(fmt.Sprintf("reuse=%v", reuse), func(b *testing.B) {
			c, err := core.New(core.WithQueueReuse(reuse))
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			t := c.NewThreadNode("w", nil)
			l := c.NewLockNode("l")
			pos, err := c.Intern(core.CallStack{{Class: "com.bench.C", Method: "m", Line: 1}})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Request(t, l, pos); err != nil {
					b.Fatal(err)
				}
				c.Acquired(t, l)
				c.Release(t, l)
			}
		})
	}
}

// --- A3: thin fast path vs always-fat ----------------------------------------

func BenchmarkAblationFattening(b *testing.B) {
	b.Run("vanilla-thin", func(b *testing.B) {
		benchSyncOp(b, false, 0, 1, func(t *vm.Thread, o *vm.Object, _ *vm.Site) {
			if err := o.Enter(t); err != nil {
				b.Fatal(err)
			}
			if err := o.Exit(t); err != nil {
				b.Fatal(err)
			}
		})
	})
	b.Run("dimmunix-fat", func(b *testing.B) {
		benchSyncOp(b, true, 0, 1, func(t *vm.Thread, o *vm.Object, _ *vm.Site) {
			if err := o.Enter(t); err != nil {
				b.Fatal(err)
			}
			if err := o.Exit(t); err != nil {
				b.Fatal(err)
			}
		})
	})
}

// --- A4: core call cost under the global lock --------------------------------

func BenchmarkAblationGlobalLock(b *testing.B) {
	c, err := core.New()
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	t := c.NewThreadNode("w", nil)
	l := c.NewLockNode("l")
	pos, err := c.Intern(core.CallStack{{Class: "com.bench.C", Method: "m", Line: 1}})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Request(t, l, pos); err != nil {
			b.Fatal(err)
		}
		c.Acquired(t, l)
		c.Release(t, l)
	}
}

// --- A5: stack capture vs compiler-assigned static ids -----------------------

func BenchmarkAblationStaticIDs(b *testing.B) {
	b.Run("capture", func(b *testing.B) {
		benchSyncOp(b, true, 1, 6, func(t *vm.Thread, o *vm.Object, _ *vm.Site) {
			o.Synchronized(t, func() {})
		})
	})
	b.Run("static-id", func(b *testing.B) {
		benchSyncOp(b, true, 1, 6, func(t *vm.Thread, o *vm.Object, site *vm.Site) {
			o.SynchronizedAt(t, site, func() {})
		})
	})
}

// --- platform message-passing cost under interception -------------------------

// BenchmarkLooperRoundTrip measures one Handler.Post round trip through
// the monitor-backed MessageQueue (enqueue → wait/notify → dispatch),
// vanilla vs Dimmunix — the framework-overhead component of platform-wide
// immunity (every queue operation is an intercepted synchronized block).
func BenchmarkLooperRoundTrip(b *testing.B) {
	for _, mode := range []struct {
		name string
		dim  bool
	}{{"vanilla", false}, {"dimmunix", true}} {
		b.Run(mode.name, func(b *testing.B) {
			z := vm.NewZygote(vm.WithDimmunix(mode.dim))
			proc, err := z.Fork("bench-looper")
			if err != nil {
				b.Fatal(err)
			}
			defer proc.Kill()
			looper, err := android.StartLooper(proc, "bench-looper-thread")
			if err != nil {
				b.Fatal(err)
			}
			h := android.NewHandler(looper, "h", nil)
			done := make(chan struct{})
			poster, err := proc.Start("poster", func(t *vm.Thread) {
				defer close(done)
				ack := make(chan struct{})
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					h.Post(t, func(*vm.Thread) { ack <- struct{}{} })
					<-ack
				}
				b.StopTimer()
			})
			if err != nil {
				b.Fatal(err)
			}
			<-poster.Done()
			<-done
		})
	}
}

// --- sharded engine: uncontended monitorenter throughput ----------------------

// BenchmarkUncontendedEnter measures the full Request/Acquired/Release
// interception cycle for uncontended monitorenters (per-goroutine private
// lock and position, named by no signature — the common case) on the
// serial reference engine vs the sharded fast path, at increasing
// goroutine counts. This is the before/after number for the sharded
// low-contention engine.
func BenchmarkUncontendedEnter(b *testing.B) {
	for _, mode := range []struct {
		name   string
		serial bool
	}{{"serial", true}, {"sharded", false}} {
		for _, gor := range []int{1, 2, 8} {
			b.Run(fmt.Sprintf("engine=%s/goroutines=%d", mode.name, gor), func(b *testing.B) {
				c, err := core.New(core.WithSerialEngine(mode.serial))
				if err != nil {
					b.Fatal(err)
				}
				defer c.Close()
				// Exactly gor goroutines (RunParallel would multiply by
				// GOMAXPROCS), each cycling a private lock and position:
				// uncontended monitorenters through the full interception.
				perG := (b.N + gor - 1) / gor
				var wg sync.WaitGroup
				var failed atomic.Bool
				b.ResetTimer()
				for i := 0; i < gor; i++ {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						t := c.NewThreadNode(fmt.Sprintf("w%d", i), nil)
						l := c.NewLockNode(fmt.Sprintf("l%d", i))
						pos, err := c.Intern(core.CallStack{{Class: "com.bench.Private", Method: "m", Line: i}})
						if err != nil {
							failed.Store(true)
							return
						}
						for n := 0; n < perG; n++ {
							if err := c.Request(t, l, pos); err != nil {
								failed.Store(true)
								return
							}
							c.Acquired(t, l)
							c.Release(t, l)
						}
					}(i)
				}
				wg.Wait()
				b.StopTimer()
				if failed.Load() {
					b.Fatal("worker failed")
				}
				st := c.Stats()
				if !mode.serial && st.FastRequests == 0 {
					b.Fatal("sharded engine never took the fast path")
				}
				if mode.serial && st.FastRequests != 0 {
					b.Fatal("serial engine took the fast path")
				}
			})
		}
	}
}

// --- fleet stress: many processes × many threads ------------------------------

// BenchmarkFleet drives the fleet stress workload (mixed Table 1 app
// profiles forked from one Zygote, unpaced) and reports aggregate
// throughput per engine — the platform-under-heavy-traffic scenario.
func BenchmarkFleet(b *testing.B) {
	for _, mode := range []struct {
		name     string
		dimmunix bool
		serial   bool
	}{{"vanilla", false, false}, {"serial", true, true}, {"sharded", true, false}} {
		b.Run(mode.name, func(b *testing.B) {
			var last workload.FleetResult
			for i := 0; i < b.N; i++ {
				cfg := workload.DefaultFleetConfig()
				cfg.Processes = 4
				cfg.ThreadsPerProc = 8
				cfg.Locks = 32
				cfg.Duration = 300 * time.Millisecond
				cfg.Dimmunix = mode.dimmunix
				cfg.Serial = mode.serial
				res, err := workload.RunFleet(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if res.DeadlocksDetected != 0 {
					b.Fatalf("fleet detected %d deadlocks", res.DeadlocksDetected)
				}
				last = res
			}
			b.ReportMetric(last.SyncsPerSec, "syncs/sec")
			b.ReportMetric(last.FastPathPct, "fastpath-%")
		})
	}
}

// --- avoidance matching cost vs history size ---------------------------------

func BenchmarkAvoidanceMatching(b *testing.B) {
	for _, sigs := range []int{0, 64, 128, 256} {
		b.Run(fmt.Sprintf("sigs=%d", sigs), func(b *testing.B) {
			c, err := core.New()
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			hot := core.CallStack{{Class: "com.bench.Hot", Method: "m", Line: 1}}
			for i := 0; i < sigs; i++ {
				cold := core.CallStack{{Class: "com.bench.Cold", Method: "m", Line: 100 + i}}
				sig := &core.Signature{Kind: core.DeadlockSig, Pairs: []core.SigPair{
					{Outer: hot, Inner: hot},
					{Outer: cold, Inner: cold},
				}}
				if _, _, err := c.AddSignature(sig); err != nil {
					b.Fatal(err)
				}
			}
			t := c.NewThreadNode("w", nil)
			l := c.NewLockNode("l")
			pos, err := c.Intern(hot)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Request(t, l, pos); err != nil {
					b.Fatal(err)
				}
				c.Acquired(t, l)
				c.Release(t, l)
			}
		})
	}
}
