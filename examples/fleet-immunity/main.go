// Fleet immunity: live cross-process propagation and the fleet exchange
// over a real network transport.
//
// Three simulated phones run the same buggy app. Each phone has an
// immunity service — the single writer of its history, hot-installing
// every new antibody into all running processes — and all three connect
// to a fleet exchange served over TCP on a loopback port, with a
// confirm-before-arm threshold of 2:
//
//  1. The deadlock manifests on phone-a. Within milliseconds every live
//     process on phone-a is armed, no restart. The exchange records the
//     report but does NOT arm the fleet: one device could be wrong.
//  2. The same deadlock manifests on phone-b — the second independent
//     confirmation. The exchange arms the signature fleet-wide, and
//     phone-c's running app is immunized against a deadlock that never
//     happened on phone-c.
//
// # The wire protocol
//
// Everything between a phone and the hub is a versioned wire message
// (internal/immunity/wire), whatever the transport:
//
//	hello      phone → hub   subscribe; resume deltas after an epoch
//	ack        hub → phone   handshake result (version checked here)
//	report     phone → hub   locally detected signatures
//	confirm    hub → phone   receipt: confirmations so far, armed?
//	delta      hub → phone   armed signatures + the new fleet epoch
//	status-req phone → hub   ask for the hub snapshot
//	status     hub → phone   provenance, devices, batching counters
//
// Swap dimmunix.NewTCPTransport for dimmunix.NewLoopback(hub) and the
// example runs without sockets — same messages, same arming decisions.
// A phone that loses its connection redials automatically and resumes
// from the last delta epoch it applied; give the hub a provenance store
// (dimmunix.NewFileProvenance) and even a hub restart loses nothing.
//
//	go run ./examples/fleet-immunity
package main

import (
	"fmt"
	"time"

	dimmunix "github.com/dimmunix/dimmunix"
)

// phone is one simulated device: a runtime with its own immunity service
// and a bystander app that has been running since boot.
type phone struct {
	name      string
	svc       *dimmunix.ImmunityService
	rt        *dimmunix.Runtime
	bystander *dimmunix.Process
}

func main() {
	hub, err := dimmunix.NewExchange(2) // arm fleet-wide after 2 devices confirm
	if err != nil {
		fmt.Println("exchange:", err)
		return
	}
	defer hub.Close()
	srv, err := dimmunix.ServeExchangeTCP(hub, "127.0.0.1:0")
	if err != nil {
		fmt.Println("serve:", err)
		return
	}
	defer srv.Close()
	fmt.Printf("fleet exchange serving on %s (threshold %d)\n", srv.Addr(), hub.Threshold())
	transport := dimmunix.NewTCPTransport(srv.Addr())

	var phones []*phone
	for _, name := range []string{"phone-a", "phone-b", "phone-c"} {
		svc, err := dimmunix.NewImmunityService(name, dimmunix.NewMemHistory())
		if err != nil {
			fmt.Println("service:", err)
			return
		}
		defer svc.Close()
		rt := dimmunix.New(dimmunix.WithImmunityService(svc))
		defer rt.Shutdown()
		bystander, err := rt.Fork("com.example.bystander")
		if err != nil {
			fmt.Println("fork:", err)
			return
		}
		client, err := dimmunix.ConnectExchange(transport, name, svc)
		if err != nil {
			fmt.Println("connect:", err)
			return
		}
		defer client.Close()
		phones = append(phones, &phone{name: name, svc: svc, rt: rt, bystander: bystander})
	}

	fmt.Println("\n== deadlock manifests on phone-a ==")
	triggerDeadlock(phones[0])
	waitArmed(phones[0], "phone-a's own live processes")
	time.Sleep(50 * time.Millisecond) // let any (wrong) fleet push land
	report(phones, hub)

	fmt.Println("\n== the same bug manifests on phone-b: second confirmation ==")
	triggerDeadlock(phones[1])
	waitArmed(phones[2], "phone-c (never saw the deadlock)")
	report(phones, hub)
}

// triggerDeadlock forks the buggy app on the phone and forces the ABBA
// interleaving; the process freezes, the signature is detected and
// published to the phone's immunity service.
func triggerDeadlock(ph *phone) {
	proc, err := ph.rt.Fork("com.example.buggy")
	if err != nil {
		fmt.Println("fork:", err)
		return
	}
	a, b := proc.NewObject("cache"), proc.NewObject("journal")
	hasA, hasB := make(chan struct{}), make(chan struct{})
	proc.Start("writer", func(t *dimmunix.Thread) {
		t.Call("com.example.Store", "flush", 31, func() {
			a.Synchronized(t, func() {
				close(hasA)
				<-hasB
				b.Synchronized(t, func() {})
			})
		})
	})
	proc.Start("compactor", func(t *dimmunix.Thread) {
		t.Call("com.example.Store", "compact", 77, func() {
			<-hasA
			b.Synchronized(t, func() {
				close(hasB)
				a.Synchronized(t, func() {})
			})
		})
	})
	deadline := time.Now().Add(5 * time.Second)
	for ph.svc.Epoch() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	fmt.Printf("%s: deadlock detected, epoch now %d (buggy app frozen — as it would be unprotected)\n",
		ph.name, ph.svc.Epoch())
}

// waitArmed polls until the phone's bystander app holds the antibody.
func waitArmed(ph *phone, what string) {
	start := time.Now()
	deadline := start.Add(5 * time.Second)
	for ph.bystander.Dimmunix().HistorySize() == 0 {
		if time.Now().After(deadline) {
			fmt.Printf("%s never armed!\n", ph.name)
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
	fmt.Printf("armed %s in %s — live process, over TCP, no restart\n", what, time.Since(start).Round(100*time.Microsecond))
}

// report prints each phone's arming state and the fleet provenance.
func report(phones []*phone, hub *dimmunix.Exchange) {
	for _, ph := range phones {
		fmt.Printf("  %s bystander history: %d antibodies\n", ph.name, ph.bystander.Dimmunix().HistorySize())
	}
	for _, prov := range hub.Provenance() {
		fmt.Printf("  fleet: %s first-seen=%s confirms=%d armed=%v\n",
			prov.Key, prov.FirstSeen, prov.Confirmations, prov.Armed)
	}
}
