// Notification deadlock: the paper's reproduced bug (Android issue 7986)
// on the full simulated platform.
//
// One thread issues a notification (NotificationManagerService holds its
// notification-list monitor and calls into the status bar) while the
// status bar's $H handler processes a panel expansion (holding the
// status-bar monitor and calling back into the notification manager) —
// a lock-order inversion across two system services that freezes the
// entire phone interface.
//
// The demo boots the phone, triggers the race (frozen interface, watchdog
// fires), reboots, and triggers it again (avoided, completes). Run with
// -vanilla to watch the baseline platform freeze every time.
//
//	go run ./examples/notification-deadlock [-vanilla]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	dimmunix "github.com/dimmunix/dimmunix"
)

func main() {
	vanilla := flag.Bool("vanilla", false, "run without deadlock immunity")
	flag.Parse()
	if err := run(!*vanilla); err != nil {
		fmt.Fprintln(os.Stderr, "notification-deadlock:", err)
		os.Exit(1)
	}
}

func run(immunity bool) error {
	cfg := dimmunix.DefaultPhoneConfig()
	cfg.Dimmunix = immunity
	cfg.WatchdogInterval = 30 * time.Millisecond
	cfg.WatchdogThreshold = 1500 * time.Millisecond
	cfg.GateTimeout = 400 * time.Millisecond
	ph := dimmunix.NewPhone(cfg)
	if err := ph.Boot(); err != nil {
		return err
	}
	defer ph.Shutdown()

	for attempt := 1; attempt <= 2; attempt++ {
		fmt.Printf("attempt %d: notification + status bar expansion, simultaneously\n", attempt)
		out, err := ph.RunNotificationScenario(time.Minute)
		if err != nil {
			return err
		}
		if out == dimmunix.OutcomeFroze {
			fmt.Println("  → interface FROZE (watchdog: StatusBarService$H stopped responding)")
			if immunity {
				for _, sig := range ph.System().Proc.Dimmunix().History() {
					fmt.Printf("  → signature persisted: %s\n", sig)
				}
			}
			fmt.Println("  → rebooting")
			if err := ph.Reboot(); err != nil {
				return err
			}
			continue
		}
		fmt.Println("  → completed: panel expanded, notification shown")
		if immunity {
			st := ph.System().Proc.Dimmunix().Stats()
			fmt.Printf("  → Dimmunix suspended the racing thread %d time(s) to dodge the signature\n", st.Yields)
		}
	}
	if immunity {
		fmt.Println("result: froze once, then immune — matching the paper's §5 narrative")
	} else {
		fmt.Println("result: vanilla platform froze on every attempt")
	}
	return nil
}
