// Quickstart: the smallest end-to-end demonstration of deadlock immunity.
//
// Two threads acquire two locks in opposite orders — the classic ABBA
// deadlock. On the first run the deadlock manifests (as it would on any
// unprotected runtime); Dimmunix detects it and saves its signature to a
// history file. The program then simulates a restart: a fresh runtime
// loads the history, the same threads run the same interleaving, and the
// deadlock is avoided — one thread is briefly suspended until the pattern
// is safe.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	dimmunix "github.com/dimmunix/dimmunix"
)

func main() {
	histPath := filepath.Join(os.TempDir(), "quickstart-deadlocks.hist")
	_ = os.Remove(histPath) // start this demo from a clean history

	fmt.Println("== run 1: no antibodies yet — the deadlock will manifest ==")
	runOnce(histPath, true)

	fmt.Println("\n== run 2: restarted runtime, history loaded — immune ==")
	runOnce(histPath, false)
}

// runOnce executes the ABBA scenario on a fresh runtime over histPath.
// strict forces the deadlock interleaving with a rendezvous; pass false
// once immunity is armed (the suspended thread can no longer rendezvous).
func runOnce(histPath string, strict bool) {
	rt := dimmunix.New(dimmunix.WithHistoryFile(histPath))
	defer rt.Shutdown()

	proc, err := rt.Fork("quickstart-app")
	if err != nil {
		fmt.Println("fork:", err)
		return
	}
	accounts := proc.NewObject("accounts")
	audit := proc.NewObject("audit")
	hasAccounts := make(chan struct{})
	hasAudit := make(chan struct{})

	t1, _ := proc.Start("transfer", func(t *dimmunix.Thread) {
		t.Call("bank.TransferService", "transfer", 42, func() {
			accounts.Synchronized(t, func() {
				close(hasAccounts)
				if strict {
					<-hasAudit // wait until the other thread holds audit
				} else {
					select {
					case <-hasAudit:
					case <-time.After(200 * time.Millisecond):
					}
				}
				audit.Synchronized(t, func() {
					fmt.Println("  transfer: updated accounts + audit log")
				})
			})
		})
	})
	t2, _ := proc.Start("report", func(t *dimmunix.Thread) {
		t.Call("bank.ReportService", "monthly", 77, func() {
			<-hasAccounts
			audit.Synchronized(t, func() {
				close(hasAudit)
				accounts.Synchronized(t, func() {
					fmt.Println("  report: read audit log + accounts")
				})
			})
		})
	})

	// Give the scenario a moment, then inspect what happened.
	completed := waitBoth(t1, t2, 2*time.Second)
	stats := proc.Dimmunix().Stats()
	switch {
	case !completed && stats.DeadlocksDetected > 0:
		fmt.Println("  DEADLOCK: both threads are frozen (as the paper's phone froze)")
		for _, sig := range proc.Dimmunix().History() {
			fmt.Printf("  antibody saved: %s\n", sig)
		}
	case completed:
		fmt.Printf("  both threads completed; avoidance yields: %d\n", stats.Yields)
	default:
		fmt.Println("  threads did not finish (unexpected)")
	}
}

// waitBoth waits for both threads up to the timeout.
func waitBoth(t1, t2 *dimmunix.Thread, timeout time.Duration) bool {
	deadline := time.After(timeout)
	for _, th := range []*dimmunix.Thread{t1, t2} {
		select {
		case <-th.Done():
		case <-deadline:
			return false
		}
	}
	return true
}
