// Why the VM owns its monitors: Go's native sync.Mutex is opaque.
//
// The paper argues (§3.1) that platform-wide deadlock immunity must live
// in the synchronization library, because that is the only layer that
// observes every lock/unlock. Go makes the same point sharply: a
// sync.Mutex cannot be intercepted, so a Dimmunix built "next to" native
// mutexes is blind to them. This demo builds the same inversion twice:
//
//  1. with VM monitors — detected, recorded, and avoided on the next run;
//
//  2. with native Go mutexes (stand-ins for NDK pthread locks) — the
//     deadlock forms, Dimmunix sees nothing, and only a timeout (the
//     user force-killing the app) dissolves it.
//
//     go run ./examples/why-monitors
package main

import (
	"fmt"
	"time"

	dimmunix "github.com/dimmunix/dimmunix"
)

func main() {
	fmt.Println("== intercepted monitors: deadlock detected and recorded ==")
	monitorRun()

	fmt.Println("\n== native locks: the same inversion is invisible (§4's NDK gap) ==")
	nativeRun()
}

// monitorRun builds the ABBA inversion on VM monitors.
func monitorRun() {
	rt := dimmunix.New()
	defer rt.Shutdown()
	proc, err := rt.Fork("monitored-app")
	if err != nil {
		fmt.Println("fork:", err)
		return
	}
	a, b := proc.NewObject("A"), proc.NewObject("B")
	hasA, hasB := make(chan struct{}), make(chan struct{})

	proc.Start("t1", func(t *dimmunix.Thread) {
		t.Call("app.Left", "run", 1, func() {
			a.Synchronized(t, func() {
				close(hasA)
				<-hasB
				b.Synchronized(t, func() {})
			})
		})
	})
	proc.Start("t2", func(t *dimmunix.Thread) {
		t.Call("app.Right", "run", 2, func() {
			<-hasA
			b.Synchronized(t, func() {
				close(hasB)
				a.Synchronized(t, func() {})
			})
		})
	})

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && proc.Dimmunix().Stats().DeadlocksDetected == 0 {
		time.Sleep(time.Millisecond)
	}
	st := proc.Dimmunix().Stats()
	fmt.Printf("  deadlocks detected: %d — signature recorded, future runs immune\n", st.DeadlocksDetected)
}

// nativeLock is an uninterceptable lock (what an NDK pthread mutex is to
// Android Dimmunix), with a timed acquire so the demo can end.
type nativeLock struct{ ch chan struct{} }

func newNativeLock() *nativeLock {
	l := &nativeLock{ch: make(chan struct{}, 1)}
	l.ch <- struct{}{}
	return l
}

func (l *nativeLock) lock(timeout time.Duration) bool {
	select {
	case <-l.ch:
		return true
	case <-time.After(timeout):
		return false
	}
}

func (l *nativeLock) unlock() { l.ch <- struct{}{} }

// nativeRun builds the same inversion on native locks.
func nativeRun() {
	rt := dimmunix.New()
	defer rt.Shutdown()
	proc, err := rt.Fork("native-app")
	if err != nil {
		fmt.Println("fork:", err)
		return
	}
	a, b := newNativeLock(), newNativeLock()
	hasA, hasB := make(chan struct{}), make(chan struct{})
	timedOut := make(chan string, 2)

	proc.Start("t1", func(t *dimmunix.Thread) {
		if !a.lock(time.Second) {
			return
		}
		close(hasA)
		<-hasB
		if !b.lock(500 * time.Millisecond) {
			timedOut <- "t1"
			a.unlock()
			return
		}
		b.unlock()
		a.unlock()
	})
	proc.Start("t2", func(t *dimmunix.Thread) {
		<-hasA
		if !b.lock(time.Second) {
			return
		}
		close(hasB)
		if !a.lock(500 * time.Millisecond) {
			timedOut <- "t2"
			b.unlock()
			return
		}
		a.unlock()
		b.unlock()
	})

	victims := 0
	deadline := time.After(5 * time.Second)
	for victims < 1 {
		select {
		case name := <-timedOut:
			fmt.Printf("  %s gave up after its timeout (the deadlock really formed)\n", name)
			victims++
		case <-deadline:
			fmt.Println("  (no timeout observed)")
			return
		}
	}
	fmt.Printf("  deadlocks detected by Dimmunix: %d — native locks are invisible to the RAG\n",
		proc.Dimmunix().Stats().DeadlocksDetected)
	fmt.Println("  (this is why the VM implements its own monitors — and why §4 leaves NDK locks to future work)")
}
