// Custom wrapper: the §3.2 MyLock pitfall of depth-1 outer call stacks.
//
//	public class MyLock {
//	  private ReentrantLock l;
//	  public void lock() { l.lock(); }
//	  public void unlock() { l.unlock(); }
//	}
//
// If every lock in the program is taken through one wrapper method, every
// acquisition shares the same depth-1 position. After the first deadlock,
// that single position lands in the history and avoidance starts yielding
// on *unrelated* wrapper users: false positives that serialize the whole
// program. This is exactly why the paper argues depth-1 stacks are safe
// only for synchronized blocks (which cannot live inside wrappers) and
// why Android Dimmunix handles only synchronized blocks/methods.
//
// The demo measures wrapper-user throughput after a deadlock signature is
// recorded, at outer depth 1 (heavy false-positive serialization) and at
// outer depth 2 (the wrapper's *callers* disambiguate the positions, so
// independent users run free).
//
//	go run ./examples/custom-wrapper
package main

import (
	"fmt"
	"sync/atomic"
	"time"

	dimmunix "github.com/dimmunix/dimmunix"
)

// wrapperFrame is MyLock.lock's program location — the one frame every
// acquisition shares when going through the wrapper.
var wrapperFrame = dimmunix.Frame{Class: "demo.MyLock", Method: "lock", Line: 7}

func main() {
	for _, depth := range []int{1, 2} {
		yields, ops := run(depth)
		fmt.Printf("outer depth %d: %6d ops in 300ms, %5d avoidance yields\n", depth, ops, yields)
	}
	fmt.Println("\ndepth 1 treats every MyLock.lock() call as the same position — the")
	fmt.Println("recorded deadlock's antibody then serializes unrelated wrapper users.")
	fmt.Println("depth 2 sees the callers, so only the genuinely matching flows yield.")
}

// run executes the wrapper workload at the given outer depth and returns
// the observed yields and completed operations.
func run(depth int) (yields uint64, ops uint64) {
	rt := dimmunix.New(dimmunix.WithCoreOptions(dimmunix.WithOuterDepth(depth)))
	defer rt.Shutdown()
	proc, err := rt.Fork("wrapper-app")
	if err != nil {
		fmt.Println("fork:", err)
		return 0, 0
	}

	// Seed the history as if a deadlock had already happened between two
	// threads that both acquired through the wrapper (from two different
	// call sites — callerA and callerB).
	seedSignature(proc, depth)

	// Two independent workers, each with its own lock, both acquiring
	// through the wrapper from their own call sites. They can never
	// deadlock with each other — any yield is a false positive.
	lockA := proc.NewObject("resourceA")
	lockB := proc.NewObject("resourceB")
	var counter atomic.Uint64
	stop := make(chan struct{})
	worker := func(name string, caller string, line int, lock *dimmunix.Object) {
		_, _ = proc.Start(name, func(t *dimmunix.Thread) {
			for {
				select {
				case <-stop:
					return
				default:
				}
				if proc.Killed() {
					return
				}
				t.Call(caller, "work", line, func() {
					myLockLock(t, lock, func() {
						// A realistic critical section: while it runs, the
						// worker occupies the wrapper position, which is
						// what triggers false-positive yields at depth 1.
						busy(400)
						counter.Add(1)
					})
				})
			}
		})
	}
	worker("workerA", "demo.CacheRefresher", 21, lockA)
	worker("workerB", "demo.LogFlusher", 63, lockB)

	time.Sleep(300 * time.Millisecond)
	close(stop)
	proc.Join(5 * time.Second)
	st := proc.Dimmunix().Stats()
	return st.Yields + st.SuppressedYields, counter.Load()
}

// busySink defeats dead-code elimination.
var busySink atomic.Uint64

// busy simulates computation.
func busy(iters int) {
	var acc uint64
	for i := 0; i < iters; i++ {
		acc = acc*1664525 + 1013904223
	}
	busySink.Add(acc)
}

// myLockLock simulates MyLock.lock(): the acquisition happens inside the
// wrapper's frame, so a depth-1 capture sees only demo.MyLock.lock:7.
func myLockLock(t *dimmunix.Thread, lock *dimmunix.Object, body func()) {
	t.Call(wrapperFrame.Class, wrapperFrame.Method, wrapperFrame.Line, func() {
		lock.Synchronized(t, body)
	})
}

// seedSignature installs the antibody a previous wrapper deadlock would
// have left: at depth 1 both outers collapse to the wrapper frame; at
// depth 2 they keep the distinct caller frames.
func seedSignature(proc *dimmunix.Process, depth int) {
	callerA := dimmunix.Frame{Class: "demo.TransferJob", Method: "run", Line: 88}
	callerB := dimmunix.Frame{Class: "demo.ReportJob", Method: "run", Line: 99}
	outerA := dimmunix.CallStack{wrapperFrame, callerA}
	outerB := dimmunix.CallStack{wrapperFrame, callerB}
	if depth == 1 {
		outerA = outerA[:1]
		outerB = outerB[:1]
	}
	sig := &dimmunix.Signature{
		Kind: dimmunix.DeadlockSig,
		Pairs: []dimmunix.SigPair{
			{Outer: outerA, Inner: outerA},
			{Outer: outerB, Inner: outerB},
		},
	}
	if _, _, err := proc.Dimmunix().AddSignature(sig); err != nil {
		fmt.Println("seed:", err)
	}
}
