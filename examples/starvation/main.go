// Starvation: an avoidance-induced deadlock and its antibody.
//
// Avoidance suspends a thread whose acquisition would re-create a
// recorded deadlock pattern. If the suspended thread's witnesses are
// themselves blocked on the suspended thread, nothing can progress — an
// avoidance-induced deadlock (§2.2). Dimmunix detects the cycle through
// the yield edge, saves a *starvation* signature, and resumes the
// suspended thread; on later runs the same yield is suppressed outright.
//
//	go run ./examples/starvation
package main

import (
	"fmt"
	"time"

	dimmunix "github.com/dimmunix/dimmunix"
)

func main() {
	history := dimmunix.NewMemHistory()
	// Pre-load the deadlock antibody whose avoidance will starve.
	seed := &dimmunix.Signature{
		Kind: dimmunix.DeadlockSig,
		Pairs: []dimmunix.SigPair{
			{Outer: stack("app.Producer", "fill", 10), Inner: stack("app.Producer", "fill", 10)},
			{Outer: stack("app.Consumer", "drain", 20), Inner: stack("app.Consumer", "drain", 20)},
		},
	}
	if err := history.Append(seed); err != nil {
		fmt.Println("seed:", err)
		return
	}

	fmt.Println("== run 1: avoidance starves, Dimmunix records the starvation ==")
	runOnce(history)
	fmt.Println("\n== run 2: the starving yield is suppressed from the start ==")
	runOnce(history)
}

func stack(class, method string, line int) dimmunix.CallStack {
	return dimmunix.CallStack{{Class: class, Method: method, Line: line}}
}

func runOnce(history dimmunix.HistoryStore) {
	rt := dimmunix.New(dimmunix.WithHistory(history))
	defer rt.Shutdown()
	proc, err := rt.Fork("pipeline")
	if err != nil {
		fmt.Println("fork:", err)
		return
	}

	buffer := proc.NewObject("buffer") // held by consumer, wanted by producer
	lockX := proc.NewObject("x")       // producer's position-10 hold
	lockY := proc.NewObject("y")       // consumer's position-20 request

	consumerInBuffer := make(chan struct{})
	producerHolding := make(chan struct{})

	// Consumer: holds buffer, then engages the signature at drain:20 —
	// avoidance wants to suspend it (producer occupies fill:10).
	consumer, _ := proc.Start("consumer", func(t *dimmunix.Thread) {
		buffer.Synchronized(t, func() {
			close(consumerInBuffer)
			<-producerHolding
			t.Call("app.Consumer", "drain", 20, func() {
				lockY.Synchronized(t, func() {})
			})
		})
	})
	// Producer: occupies fill:10, then blocks on the buffer (held by the
	// consumer) — closing the would-be yield cycle.
	producer, _ := proc.Start("producer", func(t *dimmunix.Thread) {
		<-consumerInBuffer
		t.Call("app.Producer", "fill", 10, func() {
			lockX.Synchronized(t, func() {
				close(producerHolding)
				buffer.Synchronized(t, func() {})
			})
		})
	})

	hung := false
	for _, th := range []*dimmunix.Thread{consumer, producer} {
		select {
		case <-th.Done():
		case <-time.After(3 * time.Second):
			hung = true
		}
	}
	st := proc.Dimmunix().Stats()
	fmt.Printf("  finished=%v  yields=%d  starvations=%d  suppressed-yields=%d\n",
		!hung, st.Yields, st.Starvations, st.SuppressedYields)
	for _, sig := range proc.Dimmunix().History() {
		if sig.Kind == dimmunix.StarvationSig {
			fmt.Printf("  starvation antibody: %s\n", sig)
		}
	}
}
