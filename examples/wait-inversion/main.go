// Wait inversion: the §3.2 deadlock caused by Object.wait re-acquisition.
//
//	Thread t1:                    Thread t2:
//	synchronized(x) {             synchronized(x) {
//	  synchronized(y) {             synchronized(y) {
//	    x.wait();                   }
//	  }                           }
//	}
//
// x.wait() releases only x (t1 keeps y). t2 then acquires x and blocks on
// y. When t1 finishes waiting it must RE-ACQUIRE x — while holding y, with
// t2 holding x and wanting y: deadlock. Only a runtime that intercepts the
// re-acquisition inside the wait implementation can see this cycle, which
// is why the paper changes Dalvik's Object.wait native method rather than
// instrumenting bytecode.
//
//	go run ./examples/wait-inversion
package main

import (
	"fmt"
	"time"

	dimmunix "github.com/dimmunix/dimmunix"
)

func main() {
	history := dimmunix.NewMemHistory()

	fmt.Println("== run 1: the wait-inversion deadlock manifests ==")
	runOnce(history)
	fmt.Println("\n== run 2: restarted runtime — the re-acquisition is immunized ==")
	runOnce(history)
}

func runOnce(history dimmunix.HistoryStore) {
	rt := dimmunix.New(dimmunix.WithHistory(history))
	defer rt.Shutdown()
	proc, err := rt.Fork("wait-inversion-app")
	if err != nil {
		fmt.Println("fork:", err)
		return
	}
	x := proc.NewObject("x")
	y := proc.NewObject("y")

	t1, _ := proc.Start("holder", func(t *dimmunix.Thread) {
		t.Call("demo.Holder", "hold", 12, func() {
			x.Synchronized(t, func() {
				y.Synchronized(t, func() {
					// Waits briefly, then re-acquires x while holding y.
					if _, err := x.Wait(t, 120*time.Millisecond); err != nil {
						fmt.Println("  holder wait:", err)
					}
				})
			})
		})
	})
	t2, _ := proc.Start("taker", func(t *dimmunix.Thread) {
		t.Call("demo.Taker", "take", 34, func() {
			// Enter once the holder is parked in wait.
			for proc.Stats().Waits == 0 && !proc.Killed() {
				time.Sleep(time.Millisecond)
			}
			x.Synchronized(t, func() {
				y.Synchronized(t, func() {})
			})
		})
	})

	finished := true
	for _, th := range []*dimmunix.Thread{t1, t2} {
		select {
		case <-th.Done():
		case <-time.After(2 * time.Second):
			finished = false
		}
	}
	st := proc.Dimmunix().Stats()
	if !finished && st.DeadlocksDetected > 0 {
		fmt.Println("  DEADLOCK on x.wait() re-acquisition — detected and recorded:")
		for _, sig := range proc.Dimmunix().History() {
			fmt.Printf("    %s\n", sig)
		}
		return
	}
	if finished {
		fmt.Printf("  completed cleanly (avoidance yields: %d)\n", st.Yields)
	} else {
		fmt.Println("  hung without detection (unexpected)")
	}
}
