package dimmunix_test

import (
	"errors"
	"path/filepath"
	"testing"
	"time"

	dimmunix "github.com/dimmunix/dimmunix"
)

// abba runs the classic two-lock inversion on a process forked from rt.
// strict=true forces the deadlock interleaving via a rendezvous; with
// immunity armed, pass strict=false (the suspended thread cannot reach a
// strict rendezvous).
func abba(t *testing.T, rt *dimmunix.Runtime, name string, strict bool) (*dimmunix.Process, []*dimmunix.Thread) {
	t.Helper()
	proc, err := rt.Fork(name)
	if err != nil {
		t.Fatal(err)
	}
	a, b := proc.NewObject("A"), proc.NewObject("B")
	hasA := make(chan struct{})
	hasB := make(chan struct{})

	t1, err := proc.Start("t1", func(th *dimmunix.Thread) {
		th.Call("com.example.Svc1", "transfer", 10, func() {
			a.Synchronized(th, func() {
				close(hasA)
				if strict {
					<-hasB
				} else {
					select {
					case <-hasB:
					case <-time.After(150 * time.Millisecond):
					}
				}
				b.Synchronized(th, func() {})
			})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := proc.Start("t2", func(th *dimmunix.Thread) {
		th.Call("com.example.Svc2", "audit", 20, func() {
			<-hasA
			b.Synchronized(th, func() {
				close(hasB)
				a.Synchronized(th, func() {})
			})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	return proc, []*dimmunix.Thread{t1, t2}
}

// TestRuntimeImmunityAcrossRestart drives the full public-API flow the
// README promises: run 1 deadlocks and persists a signature to the history
// file; a fresh Runtime over the same file is immune.
func TestRuntimeImmunityAcrossRestart(t *testing.T) {
	histPath := filepath.Join(t.TempDir(), "deadlocks.hist")

	// Run 1: detect and freeze.
	rt1 := dimmunix.New(dimmunix.WithHistoryFile(histPath))
	proc1, _ := abba(t, rt1, "run1", true)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && proc1.Dimmunix().Stats().DeadlocksDetected == 0 {
		time.Sleep(time.Millisecond)
	}
	if proc1.Dimmunix().Stats().DeadlocksDetected != 1 {
		t.Fatal("run 1 did not detect the deadlock")
	}
	rt1.Shutdown() // reaps the frozen threads

	// Run 2: a new runtime (restarted platform) over the same history.
	rt2 := dimmunix.New(dimmunix.WithHistoryFile(histPath))
	defer rt2.Shutdown()
	proc2, threads := abba(t, rt2, "run2", false)
	if proc2.Dimmunix().HistorySize() != 1 {
		t.Fatalf("run 2 loaded %d signatures, want 1", proc2.Dimmunix().HistorySize())
	}
	for _, th := range threads {
		select {
		case <-th.Done():
		case <-time.After(10 * time.Second):
			t.Fatalf("run 2 thread %s hung", th.Name())
		}
		if th.Err() != nil {
			t.Errorf("thread %s: %v", th.Name(), th.Err())
		}
	}
	st := proc2.Dimmunix().Stats()
	if st.DeadlocksDetected != 0 || st.DuplicateDeadlocks != 0 {
		t.Errorf("run 2 deadlocked: %+v", st)
	}
}

// TestVanillaRuntimeHasNoImmunity: the baseline configuration must fork
// processes without cores.
func TestVanillaRuntimeHasNoImmunity(t *testing.T) {
	rt := dimmunix.New(dimmunix.WithImmunity(false))
	defer rt.Shutdown()
	proc, err := rt.Fork("vanilla-app")
	if err != nil {
		t.Fatal(err)
	}
	if proc.Dimmunix() != nil {
		t.Error("vanilla runtime must not attach cores")
	}
}

// TestWaitNotifyThroughFacade exercises Object.wait/notify via the public
// API.
func TestWaitNotifyThroughFacade(t *testing.T) {
	rt := dimmunix.New()
	defer rt.Shutdown()
	proc, err := rt.Fork("app")
	if err != nil {
		t.Fatal(err)
	}
	cond := proc.NewObject("cond")
	got := make(chan bool, 1)
	waiter, err := proc.Start("waiter", func(th *dimmunix.Thread) {
		if err := cond.Enter(th); err != nil {
			t.Error(err)
			return
		}
		notified, err := cond.Wait(th, 0)
		if err != nil {
			t.Error(err)
		}
		got <- notified
		_ = cond.Exit(th)
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && proc.Stats().Waits == 0 {
		time.Sleep(time.Millisecond)
	}
	_, err = proc.Start("notifier", func(th *dimmunix.Thread) {
		cond.Synchronized(th, func() {
			if err := cond.Notify(th); err != nil {
				t.Error(err)
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case notified := <-got:
		if !notified {
			t.Error("waiter not notified")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("waiter hung")
	}
	<-waiter.Done()
}

// TestPhoneE1ThroughFacade runs the paper's headline scenario through the
// public phone API.
func TestPhoneE1ThroughFacade(t *testing.T) {
	cfg := dimmunix.DefaultPhoneConfig()
	cfg.History = dimmunix.NewMemHistory()
	cfg.WatchdogInterval = 20 * time.Millisecond
	cfg.WatchdogThreshold = 700 * time.Millisecond
	cfg.GateTimeout = 150 * time.Millisecond
	ph := dimmunix.NewPhone(cfg)
	if err := ph.Boot(); err != nil {
		t.Fatal(err)
	}
	defer ph.Shutdown()

	out, err := ph.RunNotificationScenario(30 * time.Second)
	if err != nil || out != dimmunix.OutcomeFroze {
		t.Fatalf("run 1: out=%v err=%v, want froze", out, err)
	}
	if err := ph.Reboot(); err != nil {
		t.Fatal(err)
	}
	out, err = ph.RunNotificationScenario(30 * time.Second)
	if err != nil || out != dimmunix.OutcomeCompleted {
		t.Fatalf("run 2: out=%v err=%v, want completed", out, err)
	}
}

// TestSyncSiteCensus is experiment E6: the §3.2 static census.
func TestSyncSiteCensus(t *testing.T) {
	census, err := dimmunix.FrameworkCensus()
	if err != nil {
		t.Fatal(err)
	}
	counts := census.Counts()
	if counts.TotalSyncSites != dimmunix.TargetSyncSites {
		t.Errorf("synchronized sites = %d, want %d", counts.TotalSyncSites, dimmunix.TargetSyncSites)
	}
	if counts.ExplicitLocks != dimmunix.TargetExplicitSites {
		t.Errorf("explicit sites = %d, want %d", counts.ExplicitLocks, dimmunix.TargetExplicitSites)
	}
	// The ratio is the paper's argument: explicit locking is rare enough
	// that handling only synchronized blocks/methods is not a major
	// shortcoming.
	ratio := float64(counts.TotalSyncSites) / float64(counts.ExplicitLocks)
	if ratio < 50 {
		t.Errorf("sync/explicit ratio = %.0f, want the synchronized style to dominate", ratio)
	}
}

// TestErrorsMatchable checks the exported errors work with errors.Is.
func TestErrorsMatchable(t *testing.T) {
	rt := dimmunix.New()
	proc, err := rt.Fork("app")
	if err != nil {
		t.Fatal(err)
	}
	o := proc.NewObject("o")
	th, err := proc.Start("w", func(th *dimmunix.Thread) {
		if err := o.Exit(th); !errors.Is(err, dimmunix.ErrNotOwner) {
			t.Errorf("Exit = %v, want ErrNotOwner", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	<-th.Done()
	rt.Shutdown()
}
