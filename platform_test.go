package dimmunix_test

import (
	"testing"
	"time"

	dimmunix "github.com/dimmunix/dimmunix"
	"github.com/dimmunix/dimmunix/internal/apps"
	"github.com/dimmunix/dimmunix/internal/core"
)

// TestPlatformIsolationDuringFreeze is the platform-wide story under
// load: two applications keep synchronizing at full rate while
// system_server is frozen by the notification deadlock — per-process
// immunity means one process's deadlock never impedes another — and after
// the reboot the platform is immune.
func TestPlatformIsolationDuringFreeze(t *testing.T) {
	store := core.NewMemHistory()
	cfg := dimmunix.DefaultPhoneConfig()
	cfg.History = store
	cfg.WatchdogInterval = 20 * time.Millisecond
	cfg.WatchdogThreshold = 700 * time.Millisecond
	cfg.GateTimeout = 150 * time.Millisecond
	ph := dimmunix.NewPhone(cfg)
	if err := ph.Boot(); err != nil {
		t.Fatal(err)
	}
	defer ph.Shutdown()

	// Launch two small app workloads on phone processes.
	profile := apps.Profile{
		Name: "LoadApp", Package: "com.test.load",
		Threads: 4, SyncsPerSec: 800, VanillaMB: 8,
		Locks: 64, Sites: 10,
		Classes: []string{"com.test.load.Main", "com.test.load.Worker"},
	}
	var replays []*apps.Replay
	for _, name := range []string{"com.test.load.a", "com.test.load.b"} {
		proc, err := ph.ForkApp(name)
		if err != nil {
			t.Fatal(err)
		}
		r, err := apps.AttachReplay(proc, profile, apps.DefaultReplayConfig())
		if err != nil {
			t.Fatal(err)
		}
		replays = append(replays, r)
	}

	// Freeze system_server.
	out, err := ph.RunNotificationScenario(30 * time.Second)
	if err != nil || out != dimmunix.OutcomeFroze {
		t.Fatalf("freeze run: out=%v err=%v", out, err)
	}

	// While the system is frozen, the apps must keep making progress.
	type snapshot struct{ before, after uint64 }
	snaps := make([]snapshot, len(replays))
	for i, r := range replays {
		snaps[i].before = r.Proc.SyncCount()
	}
	time.Sleep(300 * time.Millisecond)
	for i, r := range replays {
		snaps[i].after = r.Proc.SyncCount()
		if snaps[i].after <= snaps[i].before {
			t.Errorf("app %d made no progress during the system freeze", i)
		}
	}
	for _, r := range replays {
		res := r.Stop(100 * time.Millisecond)
		if res.Stats.SyncOps == 0 {
			t.Error("replay recorded no syncs")
		}
	}

	// Reboot: the whole platform (system + apps) restarts immune.
	if err := ph.Reboot(); err != nil {
		t.Fatal(err)
	}
	out, err = ph.RunNotificationScenario(30 * time.Second)
	if err != nil || out != dimmunix.OutcomeCompleted {
		t.Fatalf("immunized run: out=%v err=%v", out, err)
	}
	// A fresh app forked post-reboot is born immune (loads the history).
	app, err := ph.ForkApp("com.test.late")
	if err != nil {
		t.Fatal(err)
	}
	if app.Dimmunix().HistorySize() != 1 {
		t.Errorf("late app loaded %d signatures, want 1", app.Dimmunix().HistorySize())
	}
}
