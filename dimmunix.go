// Package dimmunix is a Go reproduction of "Platform-wide Deadlock
// Immunity for Mobile Phones" (Jula, Rensch, Candea — EPFL, 2011): the
// Dimmunix deadlock-immunity system integrated into a Dalvik-like managed
// runtime, so that every process forked from the runtime's Zygote runs
// with deadlock detection, persistent deadlock signatures, and avoidance
// of previously observed deadlocks — with no application changes.
//
// The package is a facade over the implementation packages:
//
//   - internal/core — the Dimmunix core: resource-allocation-graph
//     deadlock detection, signature extraction, persistent history, and
//     instantiation-avoidance (suspending threads whose lock acquisition
//     would re-create a recorded deadlock pattern).
//   - internal/vm — the managed-runtime substrate: VM threads with
//     explicit call stacks, objects with Dalvik-style thin/fat lock words,
//     recursive monitors with wait/notify, and the three Dimmunix
//     interception points around monitorenter/monitorexit.
//   - internal/android — the simulated platform: Looper/Handler, system
//     services (including the NotificationManagerService/StatusBarService
//     pair whose real deadlock, Android issue 7986, the paper reproduces),
//     watchdog, and the Phone boot/freeze/reboot lifecycle.
//
// # Quick start
//
//	rt := dimmunix.New(dimmunix.WithHistoryFile("deadlocks.hist"))
//	defer rt.Shutdown()
//	proc, _ := rt.Fork("my-app")
//	obj := proc.NewObject("shared")
//	proc.Start("worker", func(t *dimmunix.Thread) {
//		t.Call("com.example.Worker", "run", 42, func() {
//			obj.Synchronized(t, func() {
//				// critical section — deadlock-immune
//			})
//		})
//	})
//
// The first time a deadlock manifests it is detected and its signature is
// appended to the history file; every process forked afterwards (or after
// a restart) avoids that deadlock deterministically.
package dimmunix

import (
	"time"

	"github.com/dimmunix/dimmunix/internal/core"
	"github.com/dimmunix/dimmunix/internal/immunity"
	"github.com/dimmunix/dimmunix/internal/immunity/cluster"
	"github.com/dimmunix/dimmunix/internal/immunity/metrics"
	"github.com/dimmunix/dimmunix/internal/vm"
)

// Core types re-exported for API users.
type (
	// Frame identifies a program location (class, method, line).
	Frame = core.Frame
	// CallStack is a sequence of frames, innermost first.
	CallStack = core.CallStack
	// Signature is a deadlock antibody: one (outer, inner) call-stack
	// pair per deadlocked thread.
	Signature = core.Signature
	// SigPair is one thread's contribution to a signature.
	SigPair = core.SigPair
	// SignatureInfo is an immutable signature snapshot.
	SignatureInfo = core.SignatureInfo
	// SigKind distinguishes deadlock from starvation signatures.
	SigKind = core.SigKind
	// HistoryStore is the persistent deadlock history.
	HistoryStore = core.HistoryStore
	// Event is an observable core occurrence (detection, yield, ...).
	Event = core.Event
	// EventKind identifies an event's type.
	EventKind = core.EventKind
	// CoreStats are the immunity engine's activity counters.
	CoreStats = core.Stats
	// CoreMemStats describe the immunity engine's memory footprint.
	CoreMemStats = core.MemStats
	// CoreOption configures a process's core.
	CoreOption = core.Option
	// DeadlockError is returned under the fail policy when an acquisition
	// would complete a deadlock.
	DeadlockError = core.DeadlockError
)

// VM types re-exported for API users.
type (
	// Process is an isolated set of threads, objects and monitors with
	// its own Dimmunix instance.
	Process = vm.Process
	// Thread is a VM thread (a goroutine with an explicit call stack).
	Thread = vm.Thread
	// Object is a synchronizable object (monitorenter/monitorexit,
	// wait/notify).
	Object = vm.Object
	// Monitor is an inflated (fat) lock.
	Monitor = vm.Monitor
	// Site is a static synchronization statement.
	Site = vm.Site
	// ProcessStats are a process's synchronization counters.
	ProcessStats = vm.ProcessStats
	// Census tallies static synchronization sites.
	Census = vm.Census
)

// Immunity distribution types re-exported for API users.
//
// The fleet tier speaks a versioned, transport-agnostic wire protocol
// (internal/immunity/wire): an Exchange hub holds no references to
// device services — phones attach through a Transport (the in-process
// Loopback or the TCP transport) with ConnectExchange, report local
// detections upward, and receive fleet-armed signatures as delta
// pushes. Give the hub a ProvenanceStore (NewFileProvenance) and its
// confirm-before-arm state survives restarts.
type (
	// ImmunityService is the on-device hub: single writer of the
	// persistent history and live signature fan-out to running processes.
	ImmunityService = immunity.Service
	// ImmunityServiceStats snapshot an ImmunityService's counters.
	ImmunityServiceStats = immunity.ServiceStats
	// Exchange is the cross-device hub syncing device histories across a
	// fleet with a confirm-before-arm threshold.
	Exchange = immunity.Exchange
	// ExchangeOption configures an Exchange (e.g. WithProvenanceStore).
	ExchangeOption = immunity.ExchangeOption
	// ExchangeStats snapshot an Exchange's counters (epoch, devices,
	// confirmations vs. echoes, delta batching).
	ExchangeStats = immunity.ExchangeStats
	// ExchangeClient bridges one device's ImmunityService to an Exchange
	// over a Transport, with automatic reconnect + resubscribe-from-epoch.
	ExchangeClient = immunity.ExchangeClient
	// Transport moves wire messages between a device and an Exchange.
	Transport = immunity.Transport
	// ExchangeServer serves an Exchange over TCP (length-prefixed wire
	// frames: JSON up to wire v2, the v3 binary codec once negotiated).
	ExchangeServer = immunity.ExchangeServer
	// ProvenanceStore persists the hub's per-signature fleet state
	// across restarts.
	ProvenanceStore = immunity.ProvenanceStore
	// FileProvenanceOption configures a file provenance store (e.g.
	// WithCompactThreshold).
	FileProvenanceOption = immunity.FileProvenanceOption
	// Provenance is one fleet signature's audit record (first-seen device,
	// confirmation count, armed state, owning hub in a cluster).
	Provenance = immunity.Provenance
	// HubCluster federates several Exchange hubs into one logical fleet
	// hub: per-signature ownership via a rendezvous ring, hub-to-hub
	// report forwarding and arm broadcasting (see FederateExchange).
	HubCluster = cluster.Node
	// HubClusterConfig assembles one cluster node: the hub, its cluster
	// id, and the peer members.
	HubClusterConfig = cluster.Config
	// HubClusterMember names one remote hub of a cluster and the
	// transport that reaches it.
	HubClusterMember = cluster.Member
	// MetricsRegistry is a dependency-free instrument registry (counters,
	// gauges, histograms) rendered in Prometheus text format. Share one
	// across an Exchange (WithMetricsRegistry), a HubCluster
	// (HubClusterConfig.Metrics), and device clients (WithClientMetrics)
	// to observe a whole fleet topology on one page.
	MetricsRegistry = metrics.Registry
	// MetricsRates samples registry counters and histograms on a fixed
	// interval into ring buffers, deriving per-second rate gauges over
	// sliding windows ("reports per second over the last minute") and
	// windowed histogram quantiles. Create with NewMetricsRates.
	MetricsRates = metrics.Rates
	// MetricsRatesConfig configures a MetricsRates sampler: the sample
	// interval and the set of window widths to expose.
	MetricsRatesConfig = metrics.RatesConfig
	// SLO declares one service-level objective over a tracked series: a
	// histogram quantile or a windowed rate compared against a target.
	SLO = metrics.SLO
	// SLOStatus is one objective's evaluated state (ok/warn/breach),
	// breach count, and last state transition — the /slo payload.
	SLOStatus = metrics.SLOStatus
	// SLOEvaluator re-evaluates a set of SLOs on every rates tick and
	// runs an ok→warn→breach→ok state machine per objective. Create
	// with NewSLOEvaluator.
	SLOEvaluator = metrics.Evaluator
	// AdaptiveAdmissionPool is an admission permit pool whose capacity
	// is steered by SLO verdicts (AIMD: additive increase while ok and
	// demanded, multiplicative decrease on breach or shed). Create with
	// NewAdaptiveAdmissionPool, attach via WithAdmissionPool.
	AdaptiveAdmissionPool = metrics.AdaptivePool
	// AIMDConfig bounds an AdaptiveAdmissionPool: initial/min/max
	// capacity and the name of the SLO that steers it.
	AIMDConfig = metrics.AIMDConfig
)

// Signature kinds.
const (
	DeadlockSig   = core.DeadlockSig
	StarvationSig = core.StarvationSig
)

// Core event kinds.
const (
	EventDeadlockDetected   = core.EventDeadlockDetected
	EventSignatureLoaded    = core.EventSignatureLoaded
	EventYield              = core.EventYield
	EventResume             = core.EventResume
	EventStarvation         = core.EventStarvation
	EventDuplicateDeadlock  = core.EventDuplicateDeadlock
	EventSignatureInstalled = core.EventSignatureInstalled
)

// Errors re-exported for matching with errors.Is.
var (
	// ErrCoreClosed: operation on a closed core (process teardown).
	ErrCoreClosed = core.ErrCoreClosed
	// ErrNotOwner: monitor operation by a non-owner.
	ErrNotOwner = vm.ErrNotOwner
	// ErrInterrupted: thread interrupted while waiting.
	ErrInterrupted = vm.ErrInterrupted
	// ErrProcessKilled: operation abandoned during teardown.
	ErrProcessKilled = vm.ErrProcessKilled
)

// NewFileHistory creates a file-backed persistent history (the on-flash
// history file of the paper).
func NewFileHistory(path string) HistoryStore { return core.NewFileHistory(path) }

// NewMemHistory creates an in-memory history (shared across the runtime's
// processes; useful for tests and simulations).
func NewMemHistory() HistoryStore { return core.NewMemHistory() }

// NewImmunityService creates a device's live-propagation hub over an
// optional backing store (nil keeps the history in memory only). Attach
// it to a Runtime with WithImmunityService; connect it to an Exchange for
// fleet-wide immunity.
func NewImmunityService(name string, store HistoryStore) (*ImmunityService, error) {
	return immunity.NewService(name, store)
}

// NewExchange creates a fleet signature exchange that arms a signature
// fleet-wide once confirmThreshold distinct devices have reported it.
// With WithProvenanceStore the hub reloads its confirm-before-arm state
// on restart.
func NewExchange(confirmThreshold int, opts ...ExchangeOption) (*Exchange, error) {
	return immunity.NewExchange(confirmThreshold, opts...)
}

// WithProvenanceStore attaches durable fleet provenance to an Exchange.
func WithProvenanceStore(store ProvenanceStore) ExchangeOption {
	return immunity.WithProvenanceStore(store)
}

// WithWireCeiling pins an Exchange's negotiated wire protocol version —
// e.g. 2 keeps every session on the JSON codec during a staged rollout
// of the v3 binary codec.
func WithWireCeiling(v int) ExchangeOption {
	return immunity.WithWireCeiling(v)
}

// NewMetricsRegistry creates an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// WithMetricsRegistry shares reg with an Exchange: the hub's counters,
// session gauges, push-queue depth, and latency histograms land on it
// (instead of a private registry) for scraping alongside other hubs'.
func WithMetricsRegistry(reg *MetricsRegistry) ExchangeOption {
	return immunity.WithMetricsRegistry(reg)
}

// WithAdmission bounds an Exchange's report ingest with a permit pool:
// at most capacity report messages are processed concurrently, an
// over-capacity message waits up to maxWait (the device sees a slow
// ack), and a message still waiting at the deadline is shed — dropped
// without killing the session, recovered by the client's full-history
// re-report on its next reconnect. A report storm then degrades to
// bounded delay instead of unbounded hub memory.
func WithAdmission(capacity int, maxWait time.Duration) ExchangeOption {
	return immunity.WithAdmission(capacity, maxWait)
}

// WithAdmissionPool bounds an Exchange's report ingest with a
// caller-owned permit pool instead of a fixed WithAdmission capacity —
// pass an AdaptiveAdmissionPool's Pool to let SLO verdicts resize hub
// admission at runtime (AIMD congestion control for report storms).
func WithAdmissionPool(p *metrics.Pool) ExchangeOption {
	return immunity.WithAdmissionPool(p)
}

// NewMetricsRates creates a rate sampler over reg. Track series with
// TrackCounter/TrackHistogram, then either Start its ticker or drive it
// manually with Tick (deterministic tests). Per-second gauges land on
// reg as "<counter>_per_second{window=...}".
func NewMetricsRates(reg *MetricsRegistry, cfg MetricsRatesConfig) *MetricsRates {
	return metrics.NewRates(reg, cfg)
}

// NewSLOEvaluator registers slos for evaluation on every tick of rates,
// exposing immunity_slo_state and immunity_slo_breaches_total on reg.
func NewSLOEvaluator(reg *MetricsRegistry, rates *MetricsRates, slos []SLO) *SLOEvaluator {
	return metrics.NewEvaluator(reg, rates, slos)
}

// NewAdaptiveAdmissionPool creates an AIMD-controlled admission pool
// named name (its gauges and aimd trace counters land on reg). Bind it
// to an evaluator and pass its Pool to WithAdmissionPool.
func NewAdaptiveAdmissionPool(reg *MetricsRegistry, name string, maxWait time.Duration, cfg AIMDConfig) *AdaptiveAdmissionPool {
	return metrics.NewAdaptivePool(reg, name, maxWait, cfg)
}

// NewFileProvenance creates a file-backed provenance store (a JSON-lines
// last-wins upsert log that compacts itself to a snapshot once dead
// records pile up; tune with WithCompactThreshold).
func NewFileProvenance(path string, opts ...FileProvenanceOption) ProvenanceStore {
	return immunity.NewFileProvenance(path, opts...)
}

// WithCompactThreshold overrides how many dead upsert lines a file
// provenance log tolerates before rewriting itself; n <= 0 disables
// compaction.
func WithCompactThreshold(n int) FileProvenanceOption {
	return immunity.WithCompactThreshold(n)
}

// WithCompactionCounters mirrors a file provenance store's compaction
// activity onto registry counters (register them on the hub's shared
// MetricsRegistry to watch the log's health on /metrics).
func WithCompactionCounters(compactions, compactErrors *metrics.Counter) FileProvenanceOption {
	return immunity.WithCompactionCounters(compactions, compactErrors)
}

// NewLoopback creates the in-process transport for hub: the full wire
// protocol with no sockets.
func NewLoopback(hub *Exchange) Transport { return immunity.NewLoopback(hub) }

// NewTCPTransport creates a transport dialing the exchange served at
// addr (see ServeExchangeTCP and cmd/immunityd -serve).
func NewTCPTransport(addr string) Transport { return immunity.NewTCPTransport(addr) }

// ServeExchangeTCP serves hub on a TCP listen address ("host:port";
// ":0" picks a free port — read it back with Addr).
func ServeExchangeTCP(hub *Exchange, addr string) (*ExchangeServer, error) {
	return immunity.ServeTCP(hub, addr)
}

// ExchangeClientOption configures an exchange client at connect time
// (e.g. WithClientWireCeiling).
type ExchangeClientOption = immunity.ClientOption

// WithClientWireCeiling caps the wire version a device client
// advertises — the client-side twin of WithWireCeiling, so a staged
// rollout can pin either end of a session to the JSON codec.
func WithClientWireCeiling(v int) ExchangeClientOption {
	return immunity.WithClientWireCeiling(v)
}

// WithClientMetrics mirrors a device client's session health
// (reconnects, reports sent, fleet installs) onto reg, labelled by
// device id.
func WithClientMetrics(reg *MetricsRegistry) ExchangeClientOption {
	return immunity.WithClientMetrics(reg)
}

// ConnectExchange attaches a device's ImmunityService to a fleet
// exchange through a transport. The client keeps itself connected:
// dropped sessions are redialed and resumed from the last applied fleet
// epoch (tracked per hub incarnation, so one device can roam between
// the hubs of a cluster), and the hub restores the device's
// confirmation state by its device id.
func ConnectExchange(t Transport, deviceID string, svc *ImmunityService, opts ...ExchangeClientOption) (*ExchangeClient, error) {
	return immunity.Connect(t, deviceID, svc, opts...)
}

// NewMultiTransport fans a device out over several hub transports (a
// cluster's addresses): each dial tries them in rotation, so the device
// stays attached through any healthy hub.
func NewMultiTransport(ts ...Transport) Transport { return immunity.NewMultiTransport(ts...) }

// FederateExchange joins a hub into a federated cluster: signatures are
// owned by exactly one member hub (rendezvous hashing over the member
// ids), non-owner hubs forward device reports to the owner — the sole
// arbiter of the confirm threshold — and owned armings broadcast
// cluster-wide. Devices attach to any hub unchanged. Close the returned
// node before closing the hub.
func FederateExchange(cfg HubClusterConfig) (*HubCluster, error) { return cluster.New(cfg) }

// Core option constructors re-exported for API users.
var (
	// WithOuterDepth sets the outer call-stack depth (paper default: 1).
	WithOuterDepth = core.WithOuterDepth
	// WithAvoidance toggles signature avoidance.
	WithAvoidance = core.WithAvoidance
	// WithDetection toggles deadlock detection.
	WithDetection = core.WithDetection
	// WithQueueReuse toggles the position-queue entry recycling.
	WithQueueReuse = core.WithQueueReuse
	// WithWatchdog enables the core's starvation watchdog.
	WithWatchdog = core.WithWatchdog
	// WithSerialEngine selects the serial reference engine (the paper's
	// single global lock) instead of the sharded low-contention fast path.
	WithSerialEngine = core.WithSerialEngine
)

// NewSite declares a synchronized-block site (for the static-id fast path
// and the sync-site census).
func NewSite(class, method string, line int) *Site { return vm.NewSite(class, method, line) }

// NewCensus returns an empty synchronization-site census.
func NewCensus() *Census { return vm.NewCensus() }
