module github.com/dimmunix/dimmunix

go 1.22
